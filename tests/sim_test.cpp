// Fault & availability subsystem tests: FaultPlan determinism, the no-op
// bit-identity guarantee, identical traces across algorithms, absent-worker
// momentum policies and config validation.
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include "src/algs/registry.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"
#include "src/sim/fault_plan.h"

namespace hfl::sim {
namespace {

struct SimFixture {
  data::TrainTest dataset;
  fl::Topology topo{fl::Topology::uniform(2, 2)};
  data::Partition partition;
  nn::ModelFactory factory;
  fl::RunConfig cfg;

  SimFixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 2, 2};
    spec.num_classes = 2;
    spec.train_size = 40;
    spec.test_size = 20;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, 4, rng);
    factory = nn::logistic_regression({1, 2, 2}, 2);

    cfg.tau = 2;
    cfg.pi = 2;
    cfg.total_iterations = 12;  // 6 edge intervals, 3 cloud rounds
    cfg.batch_size = 4;
    cfg.seed = 5;
  }

  fl::Engine make_engine() {
    return fl::Engine(factory, dataset, partition, topo, cfg);
  }
};

FaultConfig dropout_config(Scalar prob, std::uint64_t seed = 42) {
  FaultConfig fc;
  fc.seed = seed;
  fc.dropout.prob = prob;
  return fc;
}

// ---- FaultPlan determinism contract ----

TEST(FaultPlanTest, IdenticalInputsGiveBitIdenticalPlans) {
  const fl::Topology topo = fl::Topology::uniform(3, 4);
  fl::RunConfig run;
  run.tau = 5;
  run.pi = 2;
  run.total_iterations = 100;

  FaultConfig fc;
  fc.seed = 9;
  fc.dropout.prob = 0.2;
  fc.churn.p_fail = 0.1;
  fc.churn.p_recover = 0.5;
  fc.straggler.fraction = 0.3;
  fc.straggler.slowdown = 3.0;
  fc.straggler.jitter = 0.2;
  fc.link.loss_prob = 0.2;
  fc.edge_outage.prob = 0.05;

  const FaultPlan a(topo, run, fc);
  const FaultPlan b(topo, run, fc);
  EXPECT_EQ(a.schedule().worker_up, b.schedule().worker_up);
  EXPECT_EQ(a.schedule().slowdown, b.schedule().slowdown);
  EXPECT_EQ(a.schedule().edge_up, b.schedule().edge_up);
  for (std::size_t k = 1; k <= a.num_intervals(); ++k) {
    for (std::size_t w = 0; w < topo.num_workers(); ++w) {
      EXPECT_EQ(a.upload_attempts(k, w), b.upload_attempts(k, w));
    }
  }
}

TEST(FaultPlanTest, SeedChangesTheTrace) {
  const fl::Topology topo = fl::Topology::uniform(2, 4);
  fl::RunConfig run;
  run.tau = 5;
  run.pi = 2;
  run.total_iterations = 100;
  const FaultPlan a(topo, run, dropout_config(0.5, 1));
  const FaultPlan b(topo, run, dropout_config(0.5, 2));
  EXPECT_NE(a.schedule().worker_up, b.schedule().worker_up);
}

TEST(FaultPlanTest, DropoutRateMatchesProbability) {
  const fl::Topology topo = fl::Topology::uniform(4, 10);
  fl::RunConfig run;
  run.tau = 1;
  run.pi = 1;
  run.total_iterations = 200;  // 200 intervals × 40 workers = 8000 slots
  const FaultPlan plan(topo, run, dropout_config(0.3));
  EXPECT_NEAR(plan.planned_participation(), 0.7, 0.03);
}

TEST(FaultPlanTest, NoopConfigProducesNoopSchedule) {
  SimFixture f;
  FaultConfig fc;  // all models off
  EXPECT_TRUE(fc.is_noop());
  const FaultPlan plan(f.topo, f.cfg, fc);
  EXPECT_TRUE(plan.schedule().is_noop());
  EXPECT_DOUBLE_EQ(plan.planned_participation(), 1.0);
}

TEST(FaultPlanTest, DeadlinePolicyDropsSlowStragglers) {
  const fl::Topology topo = fl::Topology::uniform(2, 10);
  fl::RunConfig run;
  run.tau = 1;
  run.pi = 1;
  run.total_iterations = 100;
  FaultConfig fc;
  fc.straggler.fraction = 1.0;
  fc.straggler.slowdown = 2.0;
  fc.straggler.jitter = 0.5;
  fc.straggler.deadline_slowdown = 2.0;
  const FaultPlan plan(topo, run, fc);
  // Jitter pushes some interval factors above the budget; those slots must
  // be marked absent, all others present.
  std::size_t dropped = 0;
  for (std::size_t k = 1; k <= plan.num_intervals(); ++k) {
    for (std::size_t w = 0; w < topo.num_workers(); ++w) {
      const bool over = plan.worker_slowdown(k, w) > 2.0;
      EXPECT_EQ(plan.worker_available(k, w), !over);
      dropped += over ? 1 : 0;
    }
  }
  EXPECT_GT(dropped, 0u);
}

TEST(FaultPlanTest, LinkFaultsBoundRetriesAndDropExhaustedWorkers) {
  const fl::Topology topo = fl::Topology::uniform(2, 10);
  fl::RunConfig run;
  run.tau = 1;
  run.pi = 1;
  run.total_iterations = 200;
  FaultConfig fc;
  fc.link.loss_prob = 0.5;
  fc.link.max_retries = 3;
  const FaultPlan plan(topo, run, fc);
  bool saw_retry = false, saw_drop = false;
  for (std::size_t k = 1; k <= plan.num_intervals(); ++k) {
    for (std::size_t w = 0; w < topo.num_workers(); ++w) {
      const std::size_t a = plan.upload_attempts(k, w);
      EXPECT_GE(a, 1u);
      EXPECT_LE(a, 3u);
      saw_retry |= a > 1;
      saw_drop |= !plan.worker_available(k, w);
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_drop);
}

// ---- Config validation (satellite: misconfigurations throw) ----

TEST(FaultConfigTest, ValidationRejectsBadModels) {
  FaultConfig fc;
  fc.dropout.prob = 1.5;
  EXPECT_THROW(fc.validate(), Error);
  fc = FaultConfig{};
  fc.churn.p_fail = 0.2;
  fc.churn.p_recover = 0.0;  // permanent failure: rejected
  EXPECT_THROW(fc.validate(), Error);
  fc = FaultConfig{};
  fc.straggler.slowdown = 0.5;  // a speedup is not a straggler
  EXPECT_THROW(fc.validate(), Error);
  fc = FaultConfig{};
  fc.link.loss_prob = 1.0;  // every attempt fails: nothing ever uploads
  EXPECT_THROW(fc.validate(), Error);
  fc = FaultConfig{};
  fc.link.max_retries = 0;
  EXPECT_THROW(fc.validate(), Error);
  fc = FaultConfig{};
  fc.absent_decay = 2.0;
  EXPECT_THROW(fc.validate(), Error);
}

TEST(RunConfigTest, ValidationRejectsBadConfigs) {
  fl::RunConfig ok;
  EXPECT_NO_THROW(ok.validate());

  fl::RunConfig cfg = ok;
  cfg.tau = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ok;
  cfg.total_iterations = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ok;
  cfg.total_iterations = 25;  // not a multiple of τ·π = 20
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ok;
  cfg.eta = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ok;
  cfg.gamma = 1.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ok;
  cfg.batch_size = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(ScheduleValidationTest, EngineRejectsMismatchedSchedules) {
  SimFixture f;
  fl::Engine engine = f.make_engine();
  auto alg = algs::make_algorithm("HierAdMo");

  // Built for a different topology (wrong worker count).
  const fl::Topology other = fl::Topology::uniform(2, 3);
  const FaultPlan plan(other, f.cfg, dropout_config(0.3));
  EXPECT_THROW(engine.run(*alg, &plan.schedule()), Error);
}

// ---- Engine integration ----

TEST(EnginePartialParticipationTest, NoopScheduleIsBitIdentical) {
  SimFixture f;
  fl::Engine engine = f.make_engine();
  const FaultPlan noop(f.topo, f.cfg, FaultConfig{});

  auto a1 = algs::make_algorithm("HierAdMo");
  auto a2 = algs::make_algorithm("HierAdMo");
  const fl::RunResult plain = engine.run(*a1);
  const fl::RunResult faulted = engine.run(*a2, &noop.schedule());

  ASSERT_EQ(plain.curve.size(), faulted.curve.size());
  for (std::size_t i = 0; i < plain.curve.size(); ++i) {
    EXPECT_EQ(plain.curve[i].iteration, faulted.curve[i].iteration);
    // Bit-identity, not approximate equality: the no-op path must not even
    // renormalize weights.
    EXPECT_EQ(plain.curve[i].test_loss, faulted.curve[i].test_loss);
    EXPECT_EQ(plain.curve[i].test_accuracy, faulted.curve[i].test_accuracy);
  }
  EXPECT_EQ(plain.final_accuracy, faulted.final_accuracy);
  EXPECT_TRUE(faulted.participation.empty());
  EXPECT_DOUBLE_EQ(faulted.mean_participation_rate, 1.0);
}

TEST(EnginePartialParticipationTest, FaultedRunsAreReproducible) {
  SimFixture f;
  fl::Engine engine = f.make_engine();
  const FaultPlan plan(f.topo, f.cfg, dropout_config(0.3));

  auto a1 = algs::make_algorithm("HierAdMo");
  auto a2 = algs::make_algorithm("HierAdMo");
  const fl::RunResult r1 = engine.run(*a1, &plan.schedule());
  const fl::RunResult r2 = engine.run(*a2, &plan.schedule());

  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_EQ(r1.curve[i].test_loss, r2.curve[i].test_loss);
    EXPECT_EQ(r1.curve[i].test_accuracy, r2.curve[i].test_accuracy);
  }
  ASSERT_EQ(r1.participation.size(), r2.participation.size());
  for (std::size_t i = 0; i < r1.participation.size(); ++i) {
    EXPECT_EQ(r1.participation[i].active_workers,
              r2.participation[i].active_workers);
  }
  EXPECT_EQ(r1.worker_miss_counts, r2.worker_miss_counts);
}

TEST(EnginePartialParticipationTest, SameTraceAcrossAlgorithms) {
  // The whole point of the plan: every algorithm in a sweep sees the
  // identical participation schedule.
  SimFixture f;
  fl::Engine engine = f.make_engine();
  const FaultPlan plan(f.topo, f.cfg, dropout_config(0.3));

  auto admo = algs::make_algorithm("HierAdMo");
  auto favg = algs::make_algorithm("HierFAVG");
  const fl::RunResult ra = engine.run(*admo, &plan.schedule());
  const fl::RunResult rf = engine.run(*favg, &plan.schedule());

  ASSERT_EQ(ra.participation.size(), rf.participation.size());
  ASSERT_GT(ra.participation.size(), 0u);
  for (std::size_t i = 0; i < ra.participation.size(); ++i) {
    EXPECT_EQ(ra.participation[i].interval, rf.participation[i].interval);
    EXPECT_EQ(ra.participation[i].active_workers,
              rf.participation[i].active_workers);
    EXPECT_EQ(ra.participation[i].active_edges,
              rf.participation[i].active_edges);
  }
  EXPECT_EQ(ra.worker_miss_counts, rf.worker_miss_counts);
  EXPECT_DOUBLE_EQ(ra.mean_participation_rate, rf.mean_participation_rate);
}

TEST(EnginePartialParticipationTest, ParticipationTraceIsConsistent) {
  SimFixture f;
  fl::Engine engine = f.make_engine();
  const FaultPlan plan(f.topo, f.cfg, dropout_config(0.4, 11));
  auto alg = algs::make_algorithm("HierAdMo");
  const fl::RunResult r = engine.run(*alg, &plan.schedule());

  ASSERT_EQ(r.participation.size(), f.cfg.total_iterations / f.cfg.tau);
  std::size_t misses = 0;
  for (const fl::ParticipationPoint& p : r.participation) {
    EXPECT_EQ(p.total_workers, 4u);
    EXPECT_EQ(p.total_edges, 2u);
    EXPECT_LE(p.active_workers, p.total_workers);
    EXPECT_DOUBLE_EQ(
        p.rate, static_cast<Scalar>(p.active_workers) / p.total_workers);
    misses += p.total_workers - p.active_workers;
  }
  std::size_t miss_sum = 0;
  ASSERT_EQ(r.worker_miss_counts.size(), 4u);
  for (const std::size_t m : r.worker_miss_counts) miss_sum += m;
  EXPECT_EQ(miss_sum, misses);
  EXPECT_GT(miss_sum, 0u);  // dropout 0.4 over 24 slots: misses happen
  EXPECT_GT(r.mean_participation_rate, 0.0);
  EXPECT_LT(r.mean_participation_rate, 1.0);
}

TEST(EnginePartialParticipationTest, AbsentPoliciesDiverge) {
  SimFixture f;
  fl::Engine engine = f.make_engine();

  auto run_with_policy = [&](fl::AbsentPolicy policy) {
    FaultConfig fc = dropout_config(0.4, 11);
    fc.absent_policy = policy;
    fc.absent_decay = 0.5;
    const FaultPlan plan(f.topo, f.cfg, fc);
    auto alg = algs::make_algorithm("HierAdMo");
    return engine.run(*alg, &plan.schedule());
  };

  const fl::RunResult hold = run_with_policy(fl::AbsentPolicy::kHold);
  const fl::RunResult reset = run_with_policy(fl::AbsentPolicy::kReset);
  const fl::RunResult decay = run_with_policy(fl::AbsentPolicy::kDecay);

  // All policies train to something sane on the same fault trace...
  EXPECT_GT(hold.final_accuracy, 0.0);
  EXPECT_GT(reset.final_accuracy, 0.0);
  EXPECT_GT(decay.final_accuracy, 0.0);
  // ...but handle absent momentum differently, so the trajectories differ.
  EXPECT_NE(hold.curve.back().test_loss, reset.curve.back().test_loss);
}

TEST(EnginePartialParticipationTest, TwoTierAlgorithmsReplayTheSamePlan) {
  SimFixture f;
  f.cfg.pi = 1;
  f.cfg.total_iterations = 12;
  fl::Engine engine(f.factory, f.dataset, f.partition, f.topo, f.cfg);
  const FaultPlan plan(f.topo, f.cfg, dropout_config(0.3));

  auto nag = algs::make_algorithm("FedNAG");
  auto slowmo = algs::make_algorithm("SlowMo");
  const fl::RunResult rn = engine.run(*nag, &plan.schedule());
  const fl::RunResult rs = engine.run(*slowmo, &plan.schedule());
  ASSERT_EQ(rn.participation.size(), rs.participation.size());
  for (std::size_t i = 0; i < rn.participation.size(); ++i) {
    EXPECT_EQ(rn.participation[i].active_workers,
              rs.participation[i].active_workers);
  }
  EXPECT_GT(rn.final_accuracy, 0.0);
  EXPECT_GT(rs.final_accuracy, 0.0);
}

}  // namespace
}  // namespace hfl::sim
