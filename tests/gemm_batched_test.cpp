// Contracts of the strided-batch and mixed-precision GEMM drivers.
//
// gemm_batched promises FP64 bit-identity with per-item ops::gemm calls —
// including when operands are declared shared (stride 0) and when items
// serialize into a shared accumulator. gemm_mixed promises ≤1e-6 relative
// error against the FP64 result. Shapes are randomized around the kernels'
// blocking boundaries (6/8-wide FP64 tiles, 6/16-wide FP32 tiles, the kKCf
// float-accumulation cap) so register-tile remainders and masked tails are
// all exercised.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/gemm.h"
#include "src/tensor/gemm_batched.h"
#include "src/tensor/gemm_mixed.h"

namespace hfl {
namespace {

Vec random_vec(std::size_t n, Rng& rng) {
  Vec v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

struct Shape {
  std::size_t m, n, k;
};

// Dimensions straddling the register tiles (MR=6/NR=8 double, NR=16 float),
// the direct-B cutoff (m <= 32), and the cache panels (KC=256, float
// kKCf=96).
const std::vector<Shape> kShapes = {
    {1, 1, 1},   {3, 5, 2},    {6, 8, 16},   {7, 9, 17},  {12, 16, 96},
    {13, 17, 97}, {33, 31, 64}, {40, 24, 100}, {5, 130, 260},
};

class GemmBatchedTest : public ::testing::TestWithParam<bool> {};

// Independent per-item operands: batched result must equal per-item gemm
// calls bit for bit, for both transpose settings and both beta values.
TEST_P(GemmBatchedTest, MatchesPerItemGemmBitwise) {
  const bool trans_b = GetParam();
  Rng rng(11);
  for (const Shape& s : kShapes) {
    for (const Scalar beta : {0.0, 1.0}) {
      const std::size_t items = 5;
      const Vec a = random_vec(items * s.m * s.k, rng);
      const Vec b = random_vec(items * s.k * s.n, rng);
      Vec c_ref = random_vec(items * s.m * s.n, rng);
      Vec c_bat = c_ref;
      const std::size_t ldb = trans_b ? s.k : s.n;
      for (std::size_t i = 0; i < items; ++i) {
        ops::gemm(false, trans_b, s.m, s.n, s.k, a.data() + i * s.m * s.k,
                  s.k, b.data() + i * s.k * s.n, ldb, beta,
                  c_ref.data() + i * s.m * s.n, s.n);
      }
      ops::gemm_batched(false, trans_b, s.m, s.n, s.k, items, a.data(), s.k,
                        s.m * s.k, b.data(), ldb, s.k * s.n, beta,
                        c_bat.data(), s.n, s.m * s.n);
      EXPECT_EQ(c_ref, c_bat) << "m=" << s.m << " n=" << s.n << " k=" << s.k
                              << " beta=" << beta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TransB, GemmBatchedTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "transposed" : "plain";
                         });

// stride_b == 0: every item multiplies the same B (the conv forward layout).
// Pack amortization must not change a single bit.
TEST(GemmBatchedTest, SharedBMatchesPerItemBitwise) {
  Rng rng(12);
  for (const Shape& s : kShapes) {
    const std::size_t items = 7;
    const Vec a = random_vec(items * s.m * s.k, rng);
    const Vec b = random_vec(s.k * s.n, rng);
    Vec c_ref(items * s.m * s.n, 0.0);
    Vec c_bat = c_ref;
    for (std::size_t i = 0; i < items; ++i) {
      ops::gemm(false, false, s.m, s.n, s.k, a.data() + i * s.m * s.k, s.k,
                b.data(), s.n, 0.0, c_ref.data() + i * s.m * s.n, s.n);
    }
    ops::gemm_batched(false, false, s.m, s.n, s.k, items, a.data(), s.k,
                      s.m * s.k, b.data(), s.n, 0, 0.0, c_bat.data(), s.n,
                      s.m * s.n);
    EXPECT_EQ(c_ref, c_bat) << "m=" << s.m << " n=" << s.n << " k=" << s.k;
  }
}

// stride_a == 0: shared left operand (the dcol backward layout, transposed
// weights shared across samples).
TEST(GemmBatchedTest, SharedAMatchesPerItemBitwise) {
  Rng rng(13);
  for (const Shape& s : kShapes) {
    const std::size_t items = 6;
    const Vec a = random_vec(s.k * s.m, rng);  // stored k×m for trans_a
    const Vec b = random_vec(items * s.k * s.n, rng);
    Vec c_ref(items * s.m * s.n, 0.0);
    Vec c_bat = c_ref;
    for (std::size_t i = 0; i < items; ++i) {
      ops::gemm(true, false, s.m, s.n, s.k, a.data(), s.m,
                b.data() + i * s.k * s.n, s.n, 0.0,
                c_ref.data() + i * s.m * s.n, s.n);
    }
    ops::gemm_batched(true, false, s.m, s.n, s.k, items, a.data(), s.m, 0,
                      b.data(), s.n, s.k * s.n, 0.0, c_bat.data(), s.n,
                      s.m * s.n);
    EXPECT_EQ(c_ref, c_bat) << "m=" << s.m << " n=" << s.n << " k=" << s.k;
  }
}

// stride_c == 0: items land in ONE accumulator in index order, matching a
// caller's beta-then-1 loop bit for bit (the conv weight-gradient layout).
TEST(GemmBatchedTest, SharedAccumulatorMatchesSerialLoopBitwise) {
  Rng rng(14);
  for (const Shape& s : kShapes) {
    for (const Scalar beta : {0.0, 1.0}) {
      const std::size_t items = 5;
      const Vec a = random_vec(items * s.m * s.k, rng);
      const Vec b = random_vec(items * s.k * s.n, rng);
      Vec c_ref = random_vec(s.m * s.n, rng);
      Vec c_bat = c_ref;
      for (std::size_t i = 0; i < items; ++i) {
        ops::gemm(false, false, s.m, s.n, s.k, a.data() + i * s.m * s.k, s.k,
                  b.data() + i * s.k * s.n, s.n, i == 0 ? beta : 1.0,
                  c_ref.data(), s.n);
      }
      ops::gemm_batched(false, false, s.m, s.n, s.k, items, a.data(), s.k,
                        s.m * s.k, b.data(), s.n, s.k * s.n, beta,
                        c_bat.data(), s.n, /*stride_c=*/0);
      EXPECT_EQ(c_ref, c_bat) << "m=" << s.m << " n=" << s.n << " k=" << s.k
                              << " beta=" << beta;
    }
  }
}

// Largest |mixed - fp64| / max(1, max|fp64|) over the C block.
Scalar relative_error(const Vec& ref, const Vec& got) {
  Scalar scale = 1.0;
  for (const Scalar v : ref) scale = std::max(scale, std::abs(v));
  Scalar err = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err = std::max(err, std::abs(ref[i] - got[i]));
  }
  return err / scale;
}

// Mixed precision vs FP64 on randomized shapes, including sizes that land on
// the float kernel's masked tails and cross the kKCf accumulation cap.
TEST(GemmMixedTest, WithinRelativeToleranceOfFp64) {
  Rng rng(15);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m = 1 + rng.uniform_index(40);
    const std::size_t n = 1 + rng.uniform_index(40);
    const std::size_t k = 1 + rng.uniform_index(300);
    const bool trans_a = rng.uniform() < 0.5;
    const bool trans_b = rng.uniform() < 0.5;
    const Scalar beta = rng.uniform() < 0.5 ? 0.0 : 1.0;
    const Vec a = random_vec(m * k, rng);
    const Vec b = random_vec(k * n, rng);
    Vec c_ref = random_vec(m * n, rng);
    Vec c_mix = c_ref;
    const std::size_t lda = trans_a ? m : k;
    const std::size_t ldb = trans_b ? k : n;
    ops::gemm(trans_a, trans_b, m, n, k, a.data(), lda, b.data(), ldb, beta,
              c_ref.data(), n);
    ops::gemm_mixed(trans_a, trans_b, m, n, k, a.data(), lda, b.data(), ldb,
                    beta, c_mix.data(), n);
    EXPECT_LE(relative_error(c_ref, c_mix), 1e-6)
        << "m=" << m << " n=" << n << " k=" << k << " ta=" << trans_a
        << " tb=" << trans_b << " beta=" << beta;
  }
}

// The batched mixed driver must agree with per-item gemm_mixed bitwise (same
// kernels, same order), and its shared accumulator must serialize in index
// order like the FP64 driver.
TEST(GemmMixedTest, BatchedMatchesPerItemMixedBitwise) {
  Rng rng(16);
  for (const Shape& s : kShapes) {
    const std::size_t items = 4;
    const Vec a = random_vec(items * s.m * s.k, rng);
    const Vec b = random_vec(items * s.k * s.n, rng);
    Vec c_ref(items * s.m * s.n, 0.0);
    Vec c_bat = c_ref;
    for (std::size_t i = 0; i < items; ++i) {
      ops::gemm_mixed(false, false, s.m, s.n, s.k, a.data() + i * s.m * s.k,
                      s.k, b.data() + i * s.k * s.n, s.n, 0.0,
                      c_ref.data() + i * s.m * s.n, s.n);
    }
    ops::gemm_batched_mixed(false, false, s.m, s.n, s.k, items, a.data(), s.k,
                            s.m * s.k, b.data(), s.n, s.k * s.n, 0.0,
                            c_bat.data(), s.n, s.m * s.n);
    EXPECT_EQ(c_ref, c_bat) << "m=" << s.m << " n=" << s.n << " k=" << s.k;

    Vec acc_ref(s.m * s.n, 0.0);
    Vec acc_bat(s.m * s.n, 0.0);
    for (std::size_t i = 0; i < items; ++i) {
      ops::gemm_mixed(false, false, s.m, s.n, s.k, a.data() + i * s.m * s.k,
                      s.k, b.data() + i * s.k * s.n, s.n, i == 0 ? 0.0 : 1.0,
                      acc_ref.data(), s.n);
    }
    ops::gemm_batched_mixed(false, false, s.m, s.n, s.k, items, a.data(), s.k,
                            s.m * s.k, b.data(), s.n, s.k * s.n, 0.0,
                            acc_bat.data(), s.n, 0);
    EXPECT_EQ(acc_ref, acc_bat) << "m=" << s.m << " n=" << s.n
                                << " k=" << s.k;
  }
}

}  // namespace
}  // namespace hfl
