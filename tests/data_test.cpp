// Tests for the data substrate: Dataset, synthetic generators, partitioners,
// Batcher. Heavy on properties (coverage, disjointness, determinism).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "src/data/batcher.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"

namespace hfl::data {
namespace {

Dataset small_dataset(std::size_t n, std::size_t classes) {
  Dataset d({2}, classes);
  Vec f(2);
  for (std::size_t i = 0; i < n; ++i) {
    f[0] = static_cast<Scalar>(i);
    f[1] = -static_cast<Scalar>(i);
    d.add_sample(f, i % classes);
  }
  return d;
}

TEST(DatasetTest, AddAndAccess) {
  Dataset d = small_dataset(10, 3);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.sample_size(), 2u);
  EXPECT_EQ(d.label(4), 1u);
  EXPECT_DOUBLE_EQ(d.features(4)[0], 4.0);
}

TEST(DatasetTest, RejectsBadSamples) {
  Dataset d({2}, 3);
  Vec wrong_size(3, 0.0);
  EXPECT_THROW(d.add_sample(wrong_size, 0), Error);
  Vec ok(2, 0.0);
  EXPECT_THROW(d.add_sample(ok, 3), Error);
}

TEST(DatasetTest, GatherBuildsBatch) {
  Dataset d = small_dataset(10, 2);
  Tensor x;
  std::vector<std::size_t> y;
  const std::vector<std::size_t> idx{1, 3, 5};
  d.gather(idx, x, y);
  EXPECT_EQ(x.shape(), (std::vector<std::size_t>{3, 2}));
  EXPECT_DOUBLE_EQ(x.at({1, 0}), 3.0);
  EXPECT_EQ(y, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(DatasetTest, ClassHistogramAndIndices) {
  Dataset d = small_dataset(10, 3);
  const auto hist = d.class_histogram();
  EXPECT_EQ(hist, (std::vector<std::size_t>{4, 3, 3}));
  const auto idx0 = d.indices_of_class(0);
  EXPECT_EQ(idx0, (std::vector<std::size_t>{0, 3, 6, 9}));
}

TEST(SyntheticTest, ShapesAndSizes) {
  Rng rng(1);
  SyntheticSpec spec;
  spec.sample_shape = {2, 6, 6};
  spec.num_classes = 4;
  spec.train_size = 100;
  spec.test_size = 40;
  const TrainTest tt = make_synthetic(rng, spec);
  EXPECT_EQ(tt.train.size(), 100u);
  EXPECT_EQ(tt.test.size(), 40u);
  EXPECT_EQ(tt.train.sample_size(), 72u);
  EXPECT_EQ(tt.train.num_classes(), 4u);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticSpec spec;
  spec.sample_shape = {1, 4, 4};
  spec.num_classes = 3;
  spec.train_size = 20;
  spec.test_size = 5;
  Rng a(9), b(9);
  const TrainTest ta = make_synthetic(a, spec);
  const TrainTest tb = make_synthetic(b, spec);
  for (std::size_t i = 0; i < ta.train.size(); ++i) {
    EXPECT_EQ(ta.train.label(i), tb.train.label(i));
    const auto fa = ta.train.features(i);
    const auto fb = tb.train.features(i);
    for (std::size_t j = 0; j < fa.size(); ++j) EXPECT_EQ(fa[j], fb[j]);
  }
}

TEST(SyntheticTest, ClassesAreRoughlyBalanced) {
  Rng rng(2);
  SyntheticSpec spec;
  spec.sample_shape = {1, 4, 4};
  spec.num_classes = 5;
  spec.train_size = 500;
  spec.test_size = 10;
  const TrainTest tt = make_synthetic(rng, spec);
  for (const std::size_t c : tt.train.class_histogram()) {
    EXPECT_NEAR(static_cast<double>(c), 100.0, 15.0);
  }
}

TEST(SyntheticTest, SeparationControlsClassDistance) {
  // Property: higher separation => larger distance between per-class feature
  // means relative to noise.
  auto class_mean_distance = [](Scalar separation) {
    Rng rng(3);
    SyntheticSpec spec;
    spec.sample_shape = {1, 6, 6};
    spec.num_classes = 2;
    spec.train_size = 400;
    spec.test_size = 10;
    spec.separation = separation;
    spec.noise = 1.0;
    const TrainTest tt = make_synthetic(rng, spec);
    Vec mean0(36, 0.0), mean1(36, 0.0);
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t i = 0; i < tt.train.size(); ++i) {
      const auto f = tt.train.features(i);
      Vec& m = tt.train.label(i) == 0 ? mean0 : mean1;
      (tt.train.label(i) == 0 ? n0 : n1)++;
      for (std::size_t j = 0; j < 36; ++j) m[j] += f[j];
    }
    Scalar dist = 0;
    for (std::size_t j = 0; j < 36; ++j) {
      const Scalar d = mean0[j] / n0 - mean1[j] / n1;
      dist += d * d;
    }
    return std::sqrt(dist);
  };
  EXPECT_GT(class_mean_distance(2.0), 2.0 * class_mean_distance(0.3));
}

TEST(SyntheticTest, PresetShapes) {
  Rng rng(4);
  EXPECT_EQ(make_synthetic_mnist(rng, 0.1).train.sample_shape(),
            (std::vector<std::size_t>{1, 28, 28}));
  EXPECT_EQ(make_synthetic_cifar10(rng, 0.1).train.sample_shape(),
            (std::vector<std::size_t>{3, 32, 32}));
  EXPECT_EQ(make_synthetic_imagenet(rng, 0.1).train.num_classes(), 20u);
  EXPECT_EQ(make_synthetic_har(rng, 0.1).train.num_classes(), 6u);
}

// ------------------------- partitioners -------------------------

void expect_disjoint_cover(const Partition& parts, std::size_t total) {
  std::set<std::size_t> seen;
  std::size_t count = 0;
  for (const auto& p : parts) {
    for (const std::size_t i : p) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
      ++count;
    }
  }
  EXPECT_EQ(count, total);
}

TEST(PartitionerTest, IidDisjointCoverAndBalance) {
  Dataset d = small_dataset(103, 5);
  Rng rng(5);
  const Partition parts = partition_iid(d, 4, rng);
  ASSERT_EQ(parts.size(), 4u);
  expect_disjoint_cover(parts, 103);
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 25u);
    EXPECT_LE(p.size(), 26u);
  }
}

TEST(PartitionerTest, ByClassRespectsClassBudget) {
  Rng rng(6);
  SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 10;
  spec.train_size = 600;
  spec.test_size = 10;
  const TrainTest tt = make_synthetic(rng, spec);

  for (const std::size_t x : {1, 3, 6, 9, 10}) {
    const Partition parts = partition_by_class(tt.train, 4, x, rng);
    if (4 * x >= 10) {
      // Every class has an owner, so the partition covers the dataset.
      expect_disjoint_cover(parts, tt.train.size());
    }
    for (const auto& p : parts) {
      std::set<std::size_t> classes;
      for (const std::size_t i : p) classes.insert(tt.train.label(i));
      EXPECT_LE(classes.size(), x) << "worker holds too many classes";
      EXPECT_EQ(classes.size(), std::min<std::size_t>(x, 10));
    }
  }
}

TEST(PartitionerTest, ByClassEveryWorkerNonEmpty) {
  Rng rng(7);
  SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 10;
  spec.train_size = 1000;
  spec.test_size = 10;
  const TrainTest tt = make_synthetic(rng, spec);
  const Partition parts = partition_by_class(tt.train, 100, 3, rng);
  for (const auto& p : parts) EXPECT_FALSE(p.empty());
}

TEST(PartitionerTest, ShardsDisjointCover) {
  Dataset d = small_dataset(120, 6);
  Rng rng(8);
  const Partition parts = partition_shards(d, 4, 3, rng);
  expect_disjoint_cover(parts, 120);
  // Shard partitioning limits classes per worker (3 shards -> <= 6 classes,
  // usually fewer).
  for (const auto& p : parts) EXPECT_EQ(p.size(), 30u);
}

TEST(PartitionerTest, WeightedSplitsProportionally) {
  Dataset d = small_dataset(1000, 4);
  Rng rng(9);
  const Partition parts = partition_weighted(d, {1.0, 3.0}, rng);
  ASSERT_EQ(parts.size(), 2u);
  expect_disjoint_cover(parts, 1000);
  EXPECT_NEAR(static_cast<double>(parts[0].size()), 250.0, 1.0);
  EXPECT_NEAR(static_cast<double>(parts[1].size()), 750.0, 1.0);
}

TEST(PartitionerTest, WeightedRejectsBadWeights) {
  Dataset d = small_dataset(10, 2);
  Rng rng(10);
  EXPECT_THROW(partition_weighted(d, {1.0, 0.0}, rng), Error);
  EXPECT_THROW(partition_weighted(d, {}, rng), Error);
}

// ------------------------- batcher -------------------------

TEST(BatcherTest, CoversEpochBeforeRepeating) {
  Dataset d = small_dataset(10, 2);
  std::vector<std::size_t> idx(10);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Batcher b(d, idx, 5, Rng(11));
  Tensor x;
  std::vector<std::size_t> y;
  std::set<Scalar> seen;
  for (int i = 0; i < 2; ++i) {
    b.next(x, y);
    for (std::size_t j = 0; j < 5; ++j) seen.insert(x.at({j, 0}));
  }
  EXPECT_EQ(seen.size(), 10u);  // first two batches = one full epoch
}

TEST(BatcherTest, BatchSizeCappedAtSampleCount) {
  Dataset d = small_dataset(10, 2);
  Batcher b(d, {1, 2, 3}, 64, Rng(12));
  EXPECT_EQ(b.batch_size(), 3u);
  Tensor x;
  std::vector<std::size_t> y;
  b.next(x, y);
  EXPECT_EQ(x.dim(0), 3u);
}

TEST(BatcherTest, DeterministicStream) {
  Dataset d = small_dataset(20, 2);
  std::vector<std::size_t> idx(20);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Batcher a(d, idx, 4, Rng(13));
  Batcher b(d, idx, 4, Rng(13));
  Tensor xa, xb;
  std::vector<std::size_t> ya, yb;
  for (int i = 0; i < 10; ++i) {
    a.next(xa, ya);
    b.next(xb, yb);
    EXPECT_EQ(ya, yb);
    EXPECT_EQ(xa.data(), xb.data());
  }
}

TEST(BatcherTest, RejectsEmptyOrInvalidIndices) {
  Dataset d = small_dataset(5, 2);
  EXPECT_THROW(Batcher(d, {}, 2, Rng(14)), Error);
  EXPECT_THROW(Batcher(d, {7}, 2, Rng(14)), Error);
}

}  // namespace
}  // namespace hfl::data
