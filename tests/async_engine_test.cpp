// Event-driven engine tests (src/evt/), mirroring parallel_sync_test.cpp.
//
// The two load-bearing contracts:
//   1. Sync bit-identity: evt::AsyncEngine with the sync policy reproduces
//      fl::Engine exactly — curve, final parameters, participation trace and
//      obs counters — for every registry algorithm, with and without a fault
//      schedule, at any thread count. The event replay is the correctness
//      anchor of the whole subsystem.
//   2. Event-mode determinism: semi_async and async runs are pure functions
//      of the seeds. Identical seeds give identical curves, parameters and
//      staleness metrics at 1 and 4 threads, with and without faults.
//
// Also covered: the deterministic (time, seq) event queue, fault_transitions
// extraction, the async RunConfig validation rules, the stale_sync default
// policy, and Gauge::set_max.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/common/errors.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/evt/async_engine.h"
#include "src/evt/event_queue.h"
#include "src/nn/models.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/sim/fault_plan.h"

namespace hfl::evt {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueTest, PopsByTimeThenPushOrder) {
  EventQueue q;
  q.push({2.0, 0, EventType::kCloudSync, 10, 0, false, false});
  q.push({1.0, 0, EventType::kWorkerReady, 11, 0, false, false});
  q.push({1.0, 0, EventType::kWorkerReady, 12, 0, false, false});
  q.push({0.5, 0, EventType::kFault, 13, 0, false, false});
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.total_pushed(), 4u);

  // Earliest first; equal times resolve in push order (stable seq stamps).
  EXPECT_EQ(q.pop().entity, 13u);
  EXPECT_DOUBLE_EQ(q.now(), 0.5);
  EXPECT_EQ(q.pop().entity, 11u);
  EXPECT_EQ(q.pop().entity, 12u);
  EXPECT_EQ(q.pop().entity, 10u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), Error);
}

TEST(EventQueueTest, RejectsEventsScheduledInThePast) {
  EventQueue q;
  q.push({1.0, 0, EventType::kWorkerReady, 0, 0, false, false});
  (void)q.pop();  // now() = 1.0
  EXPECT_THROW(
      q.push({0.5, 0, EventType::kWorkerReady, 0, 0, false, false}), Error);
  // Exactly "now" is legal (zero-latency follow-up events).
  q.push({1.0, 0, EventType::kWorkerReady, 0, 0, false, false});
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------------
// fault_transitions
// ---------------------------------------------------------------------------

TEST(FaultTransitionsTest, DiffsScheduleInDeterministicOrder) {
  fl::ParticipationSchedule s;
  s.num_intervals = 3;
  s.num_workers = 2;
  s.num_edges = 1;
  // Worker 1 starts down, recovers at k=2; worker 0 fails at k=3; the edge
  // goes dark at k=2 and stays dark.
  s.worker_up = {1, 0, /*k2*/ 1, 1, /*k3*/ 0, 1};
  s.edge_up = {1, /*k2*/ 0, /*k3*/ 0};
  s.slowdown.assign(s.num_intervals * s.num_workers, 1.0);

  const std::vector<sim::FaultTransition> tr = sim::fault_transitions(s);
  ASSERT_EQ(tr.size(), 4u);
  // (interval, workers before edges, ascending id); everyone up before k=1.
  EXPECT_EQ(tr[0].interval, 1u);
  EXPECT_FALSE(tr[0].is_edge);
  EXPECT_EQ(tr[0].id, 1u);
  EXPECT_FALSE(tr[0].up);
  EXPECT_EQ(tr[1].interval, 2u);
  EXPECT_FALSE(tr[1].is_edge);
  EXPECT_EQ(tr[1].id, 1u);
  EXPECT_TRUE(tr[1].up);
  EXPECT_EQ(tr[2].interval, 2u);
  EXPECT_TRUE(tr[2].is_edge);
  EXPECT_EQ(tr[2].id, 0u);
  EXPECT_FALSE(tr[2].up);
  EXPECT_EQ(tr[3].interval, 3u);
  EXPECT_FALSE(tr[3].is_edge);
  EXPECT_EQ(tr[3].id, 0u);
  EXPECT_FALSE(tr[3].up);
}

// ---------------------------------------------------------------------------
// Gauge::set_max
// ---------------------------------------------------------------------------

TEST(ObsGaugeTest, SetMaxIsMonotone) {
  obs::set_enabled(true);
  obs::Gauge g;
  g.set_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(1.0);  // lower values never win
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  obs::set_enabled(false);
  g.set_max(9.0);  // disabled telemetry records nothing
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

// ---------------------------------------------------------------------------
// RunConfig validation of the async fields
// ---------------------------------------------------------------------------

fl::RunConfig async_base(fl::ExecPolicy policy) {
  fl::RunConfig cfg;
  cfg.policy = policy;
  cfg.batched = false;
  if (policy == fl::ExecPolicy::kSemiAsync) cfg.semi_async_deadline_s = 1.0;
  return cfg;
}

TEST(AsyncConfigValidationTest, RejectsInconsistentAsyncSettings) {
  {
    fl::RunConfig cfg = async_base(fl::ExecPolicy::kSemiAsync);
    cfg.semi_async_deadline_s = 0.0;  // semi_async needs a deadline
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    fl::RunConfig cfg;  // sync
    cfg.semi_async_deadline_s = 1.0;  // deadline is semi_async-only
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    fl::RunConfig cfg = async_base(fl::ExecPolicy::kAsync);
    cfg.max_staleness = -1;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    fl::RunConfig cfg = async_base(fl::ExecPolicy::kAsync);
    cfg.staleness_decay = 0.0;  // must be in (0, 1]
    EXPECT_THROW(cfg.validate(), Error);
    cfg.staleness_decay = 1.5;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    fl::RunConfig cfg = async_base(fl::ExecPolicy::kAsync);
    cfg.stale_momentum_decay = 1.5;  // must be in [0, 1]
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    fl::RunConfig cfg = async_base(fl::ExecPolicy::kAsync);
    cfg.batched = true;  // the cohort path is barrier-shaped
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    fl::RunConfig cfg = async_base(fl::ExecPolicy::kSemiAsync);
    cfg.eval_every = 2;  // iteration-indexed cadence has no event meaning
    EXPECT_THROW(cfg.validate(), Error);
  }
  EXPECT_NO_THROW(async_base(fl::ExecPolicy::kSemiAsync).validate());
  EXPECT_NO_THROW(async_base(fl::ExecPolicy::kAsync).validate());
}

// ---------------------------------------------------------------------------
// Shared fixture (same shape as parallel_sync_test.cpp)
// ---------------------------------------------------------------------------

struct Fixture {
  data::TrainTest dataset;
  fl::Topology topo{fl::Topology::uniform(3, 3)};  // 3 edges × 3 workers
  data::Partition partition;
  nn::ModelFactory factory;
  fl::RunConfig cfg3;  // three-tier
  fl::RunConfig cfg2;  // two-tier (π = 1, matched period)

  Fixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 3, 3};
    spec.num_classes = 3;
    spec.train_size = 90;
    spec.test_size = 30;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, topo.num_workers(), rng);
    factory = nn::logistic_regression({1, 3, 3}, 3);

    cfg3.total_iterations = 8;
    cfg3.tau = 2;
    cfg3.pi = 2;
    cfg3.batch_size = 4;
    cfg3.seed = 5;
    cfg2 = cfg3;
    cfg2.tau = 4;
    cfg2.pi = 1;
  }

  fl::RunConfig config_for(const fl::Algorithm& alg) const {
    return alg.three_tier() ? cfg3 : cfg2;
  }

  fl::RunConfig event_config(const fl::Algorithm& alg,
                             fl::ExecPolicy policy) const {
    fl::RunConfig cfg = config_for(alg);
    cfg.policy = policy;
    cfg.batched = false;
    if (policy == fl::ExecPolicy::kSemiAsync) cfg.semi_async_deadline_s = 2.0;
    return cfg;
  }

  net::TimeSimConfig sim_for(const fl::Algorithm& alg) const {
    net::TimeSimConfig sim;
    sim.three_tier = alg.three_tier();
    sim.seed = 9;
    return sim;  // model_params / worker roster auto-completed by the engine
  }

  sim::FaultPlan plan_for(const fl::Algorithm& alg) const {
    sim::FaultConfig fc;
    fc.seed = 42;
    fc.dropout.prob = 0.3;
    fc.straggler.fraction = 0.4;
    fc.straggler.slowdown = 3.0;
    fc.edge_outage.prob = 0.15;
    return sim::FaultPlan(topo, config_for(alg), fc);
  }
};

struct ObsSnapshot {
  std::uint64_t edge_syncs = 0;
  std::uint64_t cloud_syncs = 0;
  obs::LinkTotals worker_edge;
  obs::LinkTotals edge_cloud;
  obs::LinkTotals worker_cloud;
};

bool operator==(const obs::LinkTotals& a, const obs::LinkTotals& b) {
  return a.messages == b.messages && a.logical_bytes == b.logical_bytes &&
         a.saved_bytes == b.saved_bytes;
}

void snapshot_obs(ObsSnapshot& snap) {
  auto& reg = obs::Registry::global();
  auto& comm = obs::CommAccountant::global();
  snap.edge_syncs = reg.counter("engine.edge_syncs").value();
  snap.cloud_syncs = reg.counter("engine.cloud_syncs").value();
  snap.worker_edge = comm.totals(obs::Link::kWorkerToEdge);
  snap.edge_cloud = comm.totals(obs::Link::kEdgeToCloud);
  snap.worker_cloud = comm.totals(obs::Link::kWorkerToCloud);
}

void expect_identical(const ObsSnapshot& a, const ObsSnapshot& b) {
  EXPECT_EQ(a.edge_syncs, b.edge_syncs);
  EXPECT_EQ(a.cloud_syncs, b.cloud_syncs);
  EXPECT_TRUE(a.worker_edge == b.worker_edge);
  EXPECT_TRUE(a.edge_cloud == b.edge_cloud);
  EXPECT_TRUE(a.worker_cloud == b.worker_cloud);
}

// Bit-identity of the training outcome (the sync contract): everything
// except sim_time/sim_seconds, which fl::Engine does not fill.
void expect_identical_training(const fl::RunResult& a, const fl::RunResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].iteration, b.curve[i].iteration);
    // EXPECT_EQ, not NEAR: the contract is bit-identity, not tolerance.
    EXPECT_EQ(a.curve[i].test_loss, b.curve[i].test_loss);
    EXPECT_EQ(a.curve[i].test_accuracy, b.curve[i].test_accuracy);
  }
  EXPECT_EQ(a.final_params, b.final_params);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.mean_participation_rate, b.mean_participation_rate);
  ASSERT_EQ(a.participation.size(), b.participation.size());
  for (std::size_t i = 0; i < a.participation.size(); ++i) {
    EXPECT_EQ(a.participation[i].active_workers,
              b.participation[i].active_workers);
    EXPECT_EQ(a.participation[i].active_edges,
              b.participation[i].active_edges);
  }
  EXPECT_EQ(a.worker_miss_counts, b.worker_miss_counts);
}

// Full identity including the event-driven fields.
void expect_identical_event_run(const fl::RunResult& a, const fl::RunResult& b) {
  expect_identical_training(a, b);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].sim_time, b.curve[i].sim_time);
  }
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.admitted_updates, b.admitted_updates);
  EXPECT_EQ(a.stale_updates, b.stale_updates);
  EXPECT_EQ(a.dropped_updates, b.dropped_updates);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  EXPECT_EQ(a.max_staleness_seen, b.max_staleness_seen);
  EXPECT_EQ(a.overlap_seconds, b.overlap_seconds);
  EXPECT_EQ(a.downloads_applied, b.downloads_applied);
  EXPECT_EQ(a.downloads_superseded, b.downloads_superseded);
}

std::vector<std::string> all_algorithms() {
  std::vector<std::string> names = algs::table2_algorithms();
  names.push_back("MimeLite");
  return names;
}

fl::RunResult run_engine(const Fixture& f, fl::Algorithm& alg,
                         std::size_t threads,
                         const fl::ParticipationSchedule* schedule,
                         ObsSnapshot* snap) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  obs::CommAccountant::global().reset();
  fl::RunConfig cfg = f.config_for(alg);
  cfg.num_threads = threads;
  fl::Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  fl::RunResult r = engine.run(alg, schedule);
  if (snap != nullptr) snapshot_obs(*snap);
  obs::set_enabled(false);
  return r;
}

fl::RunResult run_async(const Fixture& f, fl::Algorithm& alg,
                        fl::RunConfig cfg, std::size_t threads,
                        const sim::FaultPlan* plan, ObsSnapshot* snap) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  obs::CommAccountant::global().reset();
  cfg.num_threads = threads;
  AsyncEngine engine(f.factory, f.dataset, f.partition, f.topo, cfg,
                     f.sim_for(alg));
  fl::RunResult r = engine.run(alg, plan);
  if (snap != nullptr) snapshot_obs(*snap);
  obs::set_enabled(false);
  return r;
}

// ---------------------------------------------------------------------------
// Sync policy: bit-identical to fl::Engine
// ---------------------------------------------------------------------------

class AsyncSyncIdentityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AsyncSyncIdentityTest, FullParticipationMatchesEngine) {
  Fixture f;
  auto ref_alg = algs::make_algorithm(GetParam());
  auto evt1_alg = algs::make_algorithm(GetParam());
  auto evt4_alg = algs::make_algorithm(GetParam());

  ObsSnapshot ref_obs, evt1_obs, evt4_obs;
  const fl::RunResult ref = run_engine(f, *ref_alg, 1, nullptr, &ref_obs);
  const fl::RunResult evt1 = run_async(f, *evt1_alg, f.config_for(*evt1_alg),
                                       1, nullptr, &evt1_obs);
  const fl::RunResult evt4 = run_async(f, *evt4_alg, f.config_for(*evt4_alg),
                                       4, nullptr, &evt4_obs);

  expect_identical_training(ref, evt1);
  expect_identical_training(ref, evt4);
  expect_identical(ref_obs, evt1_obs);
  expect_identical(ref_obs, evt4_obs);

  // The event replay additionally stamps modeled time on the same curve.
  EXPECT_GT(evt1.sim_seconds, 0.0);
  EXPECT_EQ(evt1.sim_seconds, evt4.sim_seconds);
  for (std::size_t i = 1; i < evt1.curve.size(); ++i) {
    EXPECT_GT(evt1.curve[i].sim_time, evt1.curve[i - 1].sim_time);
    EXPECT_EQ(evt1.curve[i].sim_time, evt4.curve[i].sim_time);
  }
}

TEST_P(AsyncSyncIdentityTest, FaultScheduleMatchesEngine) {
  Fixture f;
  auto ref_alg = algs::make_algorithm(GetParam());
  auto evt1_alg = algs::make_algorithm(GetParam());
  auto evt4_alg = algs::make_algorithm(GetParam());
  const sim::FaultPlan plan = f.plan_for(*ref_alg);

  ObsSnapshot ref_obs, evt1_obs, evt4_obs;
  const fl::RunResult ref =
      run_engine(f, *ref_alg, 1, &plan.schedule(), &ref_obs);
  const fl::RunResult evt1 = run_async(f, *evt1_alg, f.config_for(*evt1_alg),
                                       1, &plan, &evt1_obs);
  const fl::RunResult evt4 = run_async(f, *evt4_alg, f.config_for(*evt4_alg),
                                       4, &plan, &evt4_obs);

  expect_identical_training(ref, evt1);
  expect_identical_training(ref, evt4);
  expect_identical(ref_obs, evt1_obs);
  expect_identical(ref_obs, evt4_obs);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AsyncSyncIdentityTest, ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Event-driven policies: seed-deterministic at any thread count
// ---------------------------------------------------------------------------

class AsyncDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AsyncDeterminismTest, SeedDeterministicAcrossThreadCounts) {
  Fixture f;
  for (const fl::ExecPolicy policy :
       {fl::ExecPolicy::kSemiAsync, fl::ExecPolicy::kAsync}) {
    auto alg1 = algs::make_algorithm(GetParam());
    auto alg4 = algs::make_algorithm(GetParam());
    const fl::RunConfig cfg = f.event_config(*alg1, policy);
    const fl::RunResult a = run_async(f, *alg1, cfg, 1, nullptr, nullptr);
    const fl::RunResult b = run_async(f, *alg4, cfg, 4, nullptr, nullptr);
    expect_identical_event_run(a, b);
    EXPECT_GT(a.sim_seconds, 0.0);
    EXPECT_GT(a.admitted_updates, 0u);
  }
}

TEST_P(AsyncDeterminismTest, SeedDeterministicUnderFaults) {
  Fixture f;
  for (const fl::ExecPolicy policy :
       {fl::ExecPolicy::kSemiAsync, fl::ExecPolicy::kAsync}) {
    auto alg1 = algs::make_algorithm(GetParam());
    auto alg4 = algs::make_algorithm(GetParam());
    const sim::FaultPlan plan = f.plan_for(*alg1);
    const fl::RunConfig cfg = f.event_config(*alg1, policy);
    const fl::RunResult a = run_async(f, *alg1, cfg, 1, &plan, nullptr);
    const fl::RunResult b = run_async(f, *alg4, cfg, 4, &plan, nullptr);
    expect_identical_event_run(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AsyncDeterminismTest, ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Staleness semantics
// ---------------------------------------------------------------------------

TEST(AsyncStalenessTest, BoundIsEnforcedAndMetricsConsistent) {
  Fixture f;
  auto alg = algs::make_algorithm("HierAdMo");
  fl::RunConfig cfg = f.event_config(*alg, fl::ExecPolicy::kAsync);
  const fl::RunResult r = run_async(f, *alg, cfg, 1, nullptr, nullptr);

  EXPECT_GT(r.admitted_updates, 0u);
  EXPECT_LE(r.stale_updates, r.admitted_updates);
  EXPECT_LE(static_cast<std::int64_t>(r.max_staleness_seen),
            cfg.max_staleness);
  EXPECT_LE(r.mean_staleness, static_cast<Scalar>(r.max_staleness_seen));
  EXPECT_GE(r.mean_staleness, 0.0);
}

TEST(AsyncStalenessTest, ZeroBoundAdmitsOnlyFreshUpdates) {
  Fixture f;
  auto alg = algs::make_algorithm("HierAdMo");
  fl::RunConfig cfg = f.event_config(*alg, fl::ExecPolicy::kAsync);
  cfg.max_staleness = 0;
  const fl::RunResult r = run_async(f, *alg, cfg, 1, nullptr, nullptr);
  EXPECT_GT(r.admitted_updates, 0u);
  EXPECT_EQ(r.max_staleness_seen, 0u);
  EXPECT_EQ(r.stale_updates, 0u);
  EXPECT_DOUBLE_EQ(r.mean_staleness, 0.0);
}

TEST(AsyncStalenessTest, EngineRejectsNonSyncPolicy) {
  Fixture f;
  auto alg = algs::make_algorithm("HierAdMo");
  fl::RunConfig cfg = f.event_config(*alg, fl::ExecPolicy::kAsync);
  EXPECT_THROW(fl::Engine(f.factory, f.dataset, f.partition, f.topo, cfg),
               Error);
}

// ---------------------------------------------------------------------------
// stale_sync default policy
// ---------------------------------------------------------------------------

class NullAlg : public fl::Algorithm {
 public:
  std::string name() const override { return "Null"; }
  bool three_tier() const override { return false; }
  void local_step(fl::Context&, fl::WorkerState&) override {}
  void cloud_sync(fl::Context&, std::size_t) override {}
};

TEST(StaleSyncTest, DefaultDecaysMomentumPerStalenessStep) {
  fl::RunConfig cfg;
  cfg.stale_momentum_decay = 0.5;
  fl::Context ctx;
  ctx.cfg = &cfg;
  NullAlg alg;

  fl::WorkerState w;
  w.x = {1.0, 1.0};
  w.y = {3.0, 3.0};
  w.v = {2.0, 2.0};
  w.sum_grad = {4.0, 4.0};
  w.sum_y = {4.0, 4.0};
  w.sum_v = {4.0, 4.0};

  alg.stale_sync(ctx, w, 2);  // factor = 0.5^2 = 0.25
  EXPECT_DOUBLE_EQ(w.y[0], 1.0 + 0.25 * 2.0);
  EXPECT_DOUBLE_EQ(w.v[0], 0.5);
  EXPECT_DOUBLE_EQ(w.sum_grad[0], 1.0);

  // decay = 1 is the hold default: a no-op at any staleness.
  cfg.stale_momentum_decay = 1.0;
  fl::WorkerState h;
  h.x = {1.0};
  h.y = {3.0};
  h.v = {2.0};
  alg.stale_sync(ctx, h, 5);
  EXPECT_DOUBLE_EQ(h.y[0], 3.0);
  EXPECT_DOUBLE_EQ(h.v[0], 2.0);
}

}  // namespace
}  // namespace hfl::evt
