// Tests for the network/time simulation: profile sampling, timeline
// monotonicity, barrier semantics, and the three-tier-vs-two-tier WAN
// traffic property that motivates the paper's Fig. 1.
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include "src/net/time_simulator.h"

namespace hfl::net {
namespace {

TEST(ProfilesTest, DeviceSamplesArePositiveAndCentered) {
  Rng rng(1);
  const DeviceProfile d = laptop_i3();
  Scalar sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const Scalar s = d.sample(rng);
    EXPECT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum / 2000, d.mean_s, 0.01);
}

TEST(ProfilesTest, LinkDelayScalesWithPayload) {
  Rng rng(2);
  const LinkProfile link = public_internet();
  Scalar small = 0, large = 0;
  for (int i = 0; i < 500; ++i) small += link.sample(rng, 1e4);
  for (int i = 0; i < 500; ++i) large += link.sample(rng, 1e7);
  EXPECT_GT(large / 500, small / 500);
  // 10 MB over ~6.25 MB/s should take roughly 1.6s on average.
  EXPECT_NEAR(large / 500, 0.025 + 1e7 / (50e6 / 8), 0.5);
}

TEST(ProfilesTest, RosterCyclesDevices) {
  const auto roster = default_worker_roster(6);
  ASSERT_EQ(roster.size(), 6u);
  EXPECT_EQ(roster[0].name, roster[4].name);
  EXPECT_EQ(roster[1].name, roster[5].name);
  EXPECT_NE(roster[0].name, roster[1].name);
}

fl::RunConfig sim_config(std::size_t T, std::size_t tau, std::size_t pi) {
  fl::RunConfig cfg;
  cfg.total_iterations = T;
  cfg.tau = tau;
  cfg.pi = pi;
  return cfg;
}

TimeSimConfig sim_for(const fl::Topology& topo, bool three_tier) {
  TimeSimConfig sim;
  sim.three_tier = three_tier;
  sim.model_params = 10000;
  sim.worker_devices = default_worker_roster(topo.num_workers());
  return sim;
}

TEST(TimeSimulatorTest, TimelineIsMonotone) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = sim_config(40, 5, 2);
  TimeSimulator sim(topo, cfg, sim_for(topo, true));
  EXPECT_DOUBLE_EQ(sim.time_at_iteration(0), 0.0);
  Scalar prev = 0;
  for (std::size_t t = 1; t <= 40; ++t) {
    const Scalar now = sim.time_at_iteration(t);
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_GT(sim.total_time(), 0.0);
  EXPECT_THROW(sim.time_at_iteration(41), Error);
}

TEST(TimeSimulatorTest, DeterministicGivenSeed) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = sim_config(40, 5, 2);
  TimeSimulator a(topo, cfg, sim_for(topo, true));
  TimeSimulator b(topo, cfg, sim_for(topo, true));
  EXPECT_DOUBLE_EQ(a.total_time(), b.total_time());
}

TEST(TimeSimulatorTest, ThreeTierBeatsTwoTierWhenWanIsSlow) {
  // The architectural claim of Fig. 1: with a slow WAN, syncing through the
  // edge (τ=10, π=2: one WAN round-trip per 20 iterations) is faster than
  // syncing every 20 iterations straight over the WAN per worker — because
  // two-tier pays per-worker WAN jitter on the barrier, while three-tier
  // pays cheap WiFi barriers plus one WAN exchange per cloud round.
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  TimeSimConfig sim3 = sim_for(topo, true);
  TimeSimConfig sim2 = sim_for(topo, false);
  // Exaggerate the WAN cost so the effect dominates compute.
  sim3.edge_cloud_link.latency_s = 1.0;
  sim2.worker_cloud_link.latency_s = 1.0;
  sim3.model_params = 2000000;
  sim2.model_params = 2000000;

  TimeSimulator three(topo, sim_config(200, 10, 2), sim3);
  TimeSimulator two(topo, sim_config(200, 20, 1), sim2);
  EXPECT_LT(three.total_time(), two.total_time());
}

TEST(TimeSimulatorTest, MoreFrequentCloudSyncCostsMore) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  TimeSimConfig sim = sim_for(topo, true);
  sim.model_params = 1000000;
  TimeSimulator pi1(topo, sim_config(120, 10, 1), sim);
  TimeSimulator pi4(topo, sim_config(120, 10, 4), sim);
  // π = 1 does 12 WAN exchanges, π = 4 only 3.
  EXPECT_GT(pi1.total_time(), pi4.total_time());
}

TEST(TimeSimulatorTest, TimeToAccuracyUsesCurve) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = sim_config(40, 5, 2);
  TimeSimulator sim(topo, cfg, sim_for(topo, true));
  fl::RunResult r;
  r.curve = {{0, 1.0, 0.1}, {20, 0.5, 0.7}, {40, 0.2, 0.95}};
  const Scalar t_07 = sim.time_to_accuracy(r, 0.6);
  EXPECT_DOUBLE_EQ(t_07, sim.time_at_iteration(20));
  // kNeverReached is an alias of the shared hfl::kNeverTime sentinel.
  static_assert(TimeSimulator::kNeverReached == kNeverTime);
  EXPECT_DOUBLE_EQ(sim.time_to_accuracy(r, 0.99), kNeverTime);
  // Reached at t = 0 is a real answer (time 0), distinct from "never".
  EXPECT_DOUBLE_EQ(sim.time_to_accuracy(r, 0.05), 0.0);
}

TEST(TimeSimulatorTest, ConfigValidation) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  TimeSimConfig sim = sim_for(topo, true);
  sim.model_params = 0;
  EXPECT_THROW(TimeSimulator(topo, sim_config(20, 5, 2), sim), Error);
  sim.model_params = 100;
  sim.worker_devices.pop_back();
  EXPECT_THROW(TimeSimulator(topo, sim_config(20, 5, 2), sim), Error);
}

TEST(TimeSimConfigTest, AlgorithmMultiplicities) {
  const TimeSimConfig h = make_time_sim_config("HierAdMo", true, 100, 4);
  EXPECT_DOUBLE_EQ(h.worker_upload_vectors, 4.0);  // y, x, Σ∇F, Σy (line 9)
  EXPECT_DOUBLE_EQ(h.worker_download_vectors, 2.0);
  const TimeSimConfig n = make_time_sim_config("FedNAG", false, 100, 4);
  EXPECT_DOUBLE_EQ(n.worker_upload_vectors, 2.0);
  const TimeSimConfig f = make_time_sim_config("FedAvg", false, 100, 4);
  EXPECT_DOUBLE_EQ(f.worker_upload_vectors, 1.0);
  EXPECT_EQ(f.worker_devices.size(), 4u);
}

}  // namespace
}  // namespace hfl::net
