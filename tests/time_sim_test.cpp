// TimeSimulator barrier math under zero-variance profiles (hand-computed
// expected times for two- and three-tier), identical-seed trace regression,
// and the fault-aware timeline extensions (stragglers, retries, deadlines).
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include "src/net/time_simulator.h"
#include "src/sim/fault_plan.h"

namespace hfl::net {
namespace {

// All randomness off: device delay = mean, link delay = latency + payload ×
// concurrent / bandwidth. Barrier times are then exact closed forms.
DeviceProfile fixed_device(Scalar mean) {
  DeviceProfile d;
  d.name = "fixed";
  d.mean_s = mean;
  d.std_s = 0.0;
  return d;
}

LinkProfile fixed_link() {
  LinkProfile l;
  l.name = "fixed";
  l.latency_s = 0.1;
  l.bandwidth_bytes_per_s = 4e4;
  l.jitter = 0.0;
  return l;
}

fl::RunConfig run_config(std::size_t T, std::size_t tau, std::size_t pi) {
  fl::RunConfig cfg;
  cfg.total_iterations = T;
  cfg.tau = tau;
  cfg.pi = pi;
  return cfg;
}

// 1000 params × 4 B = 4000 B payload ⇒ 0.1 s per concurrent sender on the
// 4e4 B/s links below.
TimeSimConfig fixed_sim(const fl::Topology& topo, bool three_tier) {
  TimeSimConfig sim;
  sim.three_tier = three_tier;
  sim.model_params = 1000;
  sim.worker_devices.assign(topo.num_workers(), fixed_device(1.0));
  sim.edge_device = fixed_device(0.5);
  sim.cloud_device = fixed_device(0.5);
  sim.worker_edge_link = fixed_link();
  sim.edge_cloud_link = fixed_link();
  sim.worker_cloud_link = fixed_link();
  return sim;
}

// Default (noisy) profiles, as a real experiment would use them.
TimeSimConfig sim_config_with_noise(const fl::Topology& topo) {
  TimeSimConfig sim;
  sim.three_tier = true;
  sim.model_params = 10000;
  sim.worker_devices = default_worker_roster(topo.num_workers());
  return sim;
}

constexpr Scalar kTol = 1e-9;

TEST(BarrierMathTest, ThreeTierHandComputed) {
  // 2 edges × 2 workers, τ = 2, π = 2, T = 4 (one cloud round at k = 2).
  //   worker: compute 2 × 1.0, upload 0.1 + 4000·2/4e4 = 0.3 (2 on the WiFi)
  //   edge interval: 2.3 (slowest) + 0.5 (agg) + 0.3 (down) = 3.1
  //   cloud round: 6.2 + 0.3 (upload, 2 edges share) + 0.5 + 0.3 = 7.3
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  TimeSimulator sim(topo, run_config(4, 2, 2), fixed_sim(topo, true));
  EXPECT_NEAR(sim.time_at_iteration(1), 1.55, kTol);  // interpolated
  EXPECT_NEAR(sim.time_at_iteration(2), 3.1, kTol);
  EXPECT_NEAR(sim.time_at_iteration(3), 5.2, kTol);   // interpolated
  EXPECT_NEAR(sim.total_time(), 7.3, kTol);
}

TEST(BarrierMathTest, TwoTierHandComputed) {
  // 4 workers straight to the cloud, τ = 2, T = 4.
  //   upload: 0.1 + 4000·4/4e4 = 0.5 (4 workers share the WAN)
  //   round: 2.0 (compute) + 0.5 (up) + 0.5 (agg) + 0.5 (down) = 3.5
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  TimeSimulator sim(topo, run_config(4, 2, 1), fixed_sim(topo, false));
  EXPECT_NEAR(sim.time_at_iteration(2), 3.5, kTol);
  EXPECT_NEAR(sim.total_time(), 7.0, kTol);
}

TEST(BarrierMathTest, SlowestWorkerSetsTheBarrier) {
  // Make worker 0 three times slower: the edge interval waits for it.
  //   slowest = 2 × 3.0 + 0.3 = 6.3; interval = 6.3 + 0.5 + 0.3 = 7.1
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  TimeSimConfig sim = fixed_sim(topo, true);
  sim.worker_devices[0] = fixed_device(3.0);
  TimeSimulator t(topo, run_config(2, 2, 1), sim);
  // Cloud round (π = 1) adds 0.3 + 0.5 + 0.3 on top of the slower edge; the
  // fast edge (3.1) is absorbed by the barrier.
  EXPECT_NEAR(t.total_time(), 7.1 + 1.1, kTol);
}

TEST(TimeSimulatorRegressionTest, IdenticalSeedIdenticalTrace) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = run_config(40, 5, 2);
  TimeSimConfig sim = sim_config_with_noise(topo);
  TimeSimulator a(topo, cfg, sim);
  TimeSimulator b(topo, cfg, sim);
  for (std::size_t t = 0; t <= 40; ++t) {
    EXPECT_DOUBLE_EQ(a.time_at_iteration(t), b.time_at_iteration(t));
  }
}

// ---- Fault-aware timeline ----

TEST(FaultTimelineTest, NoopPlanReproducesFaultFreeTimelineBitForBit) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = run_config(40, 5, 2);
  const sim::FaultPlan noop(topo, cfg, sim::FaultConfig{});

  TimeSimConfig plain = sim_config_with_noise(topo);
  TimeSimConfig faulted = plain;
  faulted.fault_plan = &noop;

  TimeSimulator a(topo, cfg, plain);
  TimeSimulator b(topo, cfg, faulted);
  for (std::size_t t = 0; t <= 40; ++t) {
    EXPECT_DOUBLE_EQ(a.time_at_iteration(t), b.time_at_iteration(t));
  }
}

TEST(FaultTimelineTest, StragglersStretchTheTimelineExactly) {
  // Every worker a deterministic 3× straggler (jitter 0): compute triples.
  //   edge interval: 2 × 3.0 + 0.3 + 0.5 + 0.3 = 7.1; cloud adds 1.1 at k=2
  //   on top of 14.2 ⇒ total 15.3 (vs 7.3 fault-free).
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = run_config(4, 2, 2);
  sim::FaultConfig fc;
  fc.straggler.fraction = 1.0;
  fc.straggler.slowdown = 3.0;
  const sim::FaultPlan plan(topo, cfg, fc);

  TimeSimConfig sim = fixed_sim(topo, true);
  sim.fault_plan = &plan;
  TimeSimulator t(topo, cfg, sim);
  EXPECT_NEAR(t.total_time(), 15.3, kTol);
}

TEST(FaultTimelineTest, DeadlineCapsTheBarrierWait) {
  // Same 3× stragglers, but the aggregator only waits 3 s:
  //   edge interval: min(6.3, 3.0) + 0.5 + 0.3 = 3.8; cloud: 7.6 + 1.1 = 8.7
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = run_config(4, 2, 2);
  sim::FaultConfig fc;
  fc.straggler.fraction = 1.0;
  fc.straggler.slowdown = 3.0;
  const sim::FaultPlan plan(topo, cfg, fc);

  TimeSimConfig sim = fixed_sim(topo, true);
  sim.fault_plan = &plan;
  sim.barrier_deadline_s = 3.0;
  TimeSimulator t(topo, cfg, sim);
  EXPECT_NEAR(t.total_time(), 8.7, kTol);
}

TEST(FaultTimelineTest, LinkRetriesCostTransfersAndBackoff) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = run_config(20, 2, 1);
  sim::FaultConfig fc;
  fc.link.loss_prob = 0.4;
  fc.link.max_retries = 5;
  const sim::FaultPlan plan(topo, cfg, fc);

  TimeSimConfig plain = fixed_sim(topo, true);
  TimeSimConfig faulted = plain;
  faulted.fault_plan = &plan;
  TimeSimulator a(topo, cfg, plain);
  TimeSimulator b(topo, cfg, faulted);
  // Retries only ever add time (extra transfers + exponential backoff).
  EXPECT_GT(b.total_time(), a.total_time());
}

TEST(FaultTimelineTest, FullyAbsentFleetAddsNoTime) {
  // dropout = 1: nobody ever uploads, no barrier ever completes.
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = run_config(4, 2, 2);
  sim::FaultConfig fc;
  fc.dropout.prob = 1.0;
  const sim::FaultPlan plan(topo, cfg, fc);

  TimeSimConfig sim = fixed_sim(topo, true);
  sim.fault_plan = &plan;
  TimeSimulator t(topo, cfg, sim);
  EXPECT_DOUBLE_EQ(t.total_time(), 0.0);
}

TEST(FaultTimelineTest, ConfigValidation) {
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const fl::RunConfig cfg = run_config(4, 2, 2);

  TimeSimConfig sim = fixed_sim(topo, true);
  sim.retry_backoff_mult = 0.5;  // shrinking backoff
  EXPECT_THROW(TimeSimulator(topo, cfg, sim), Error);

  sim = fixed_sim(topo, true);
  sim.retry_backoff_s = -1.0;
  EXPECT_THROW(TimeSimulator(topo, cfg, sim), Error);

  sim = fixed_sim(topo, true);
  sim.barrier_deadline_s = -0.1;
  EXPECT_THROW(TimeSimulator(topo, cfg, sim), Error);

  // Plan built for a different topology.
  const fl::Topology other = fl::Topology::uniform(2, 3);
  const sim::FaultPlan plan(other, cfg, sim::FaultConfig{});
  sim = fixed_sim(topo, true);
  sim.fault_plan = &plan;
  EXPECT_THROW(TimeSimulator(topo, cfg, sim), Error);
}

}  // namespace
}  // namespace hfl::net
