// Tests for losses, the Model flat-parameter interface, and the model zoo.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/dense.h"
#include "src/nn/flatten.h"
#include "src/nn/gradcheck.h"
#include "src/nn/models.h"

namespace hfl::nn {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  Tensor pred({2, 4});  // all-zero logits -> uniform softmax
  const Scalar l = loss.forward(pred, {0, 3});
  EXPECT_NEAR(l, std::log(4.0), 1e-12);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectPredictionLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor pred({1, 3}, Vec{20, 0, 0});
  EXPECT_LT(loss.forward(pred, {0}), 1e-6);
  Tensor pred_wrong({1, 3}, Vec{20, 0, 0});
  EXPECT_GT(loss.forward(pred_wrong, {1}), 10.0);
}

TEST(SoftmaxCrossEntropyTest, GradientSumsToZeroPerRow) {
  SoftmaxCrossEntropy loss;
  Rng rng(1);
  Tensor pred = Tensor::randn({3, 5}, rng);
  loss.forward(pred, {0, 2, 4});
  Tensor g = loss.backward();
  for (std::size_t i = 0; i < 3; ++i) {
    Scalar row_sum = 0;
    for (std::size_t j = 0; j < 5; ++j) row_sum += g.at({i, j});
    EXPECT_NEAR(row_sum, 0.0, 1e-12);  // softmax-CE grad rows sum to zero
  }
}

TEST(SoftmaxCrossEntropyTest, NumericalGradient) {
  SoftmaxCrossEntropy loss;
  Rng rng(2);
  Tensor pred = Tensor::randn({2, 4}, rng);
  const std::vector<std::size_t> labels{1, 3};
  loss.forward(pred, labels);
  Tensor g = loss.backward();
  const Scalar eps = 1e-6;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    Tensor p = pred;
    p[i] += eps;
    const Scalar up = loss.forward(p, labels);
    p[i] -= 2 * eps;
    const Scalar down = loss.forward(p, labels);
    EXPECT_NEAR((up - down) / (2 * eps), g[i], 1e-6);
  }
}

TEST(MseOnOneHotTest, PerfectPredictionZeroLoss) {
  MseOnOneHot loss;
  Tensor pred({2, 3}, Vec{1, 0, 0, 0, 0, 1});
  EXPECT_DOUBLE_EQ(loss.forward(pred, {0, 2}), 0.0);
}

TEST(MseOnOneHotTest, KnownValue) {
  MseOnOneHot loss;
  Tensor pred({1, 2}, Vec{0, 0});
  // 0.5 * ((0-1)^2 + 0^2) = 0.5
  EXPECT_DOUBLE_EQ(loss.forward(pred, {0}), 0.5);
}

TEST(MseOnOneHotTest, NumericalGradient) {
  MseOnOneHot loss;
  Rng rng(3);
  Tensor pred = Tensor::randn({2, 3}, rng);
  const std::vector<std::size_t> labels{2, 0};
  loss.forward(pred, labels);
  Tensor g = loss.backward();
  const Scalar eps = 1e-6;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    Tensor p = pred;
    p[i] += eps;
    const Scalar up = loss.forward(p, labels);
    p[i] -= 2 * eps;
    const Scalar down = loss.forward(p, labels);
    EXPECT_NEAR((up - down) / (2 * eps), g[i], 1e-6);
  }
}

TEST(LossTest, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy loss;
  Tensor pred({1, 3});
  EXPECT_THROW(loss.forward(pred, {3}), Error);
}

std::unique_ptr<Model> tiny_model() {
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Dense>(4, 3);
  return std::make_unique<Model>(std::move(net),
                                 std::make_unique<SoftmaxCrossEntropy>(),
                                 std::vector<std::size_t>{4});
}

TEST(ModelTest, ParamRoundTrip) {
  auto model = tiny_model();
  Rng rng(4);
  model->init_params(rng);
  EXPECT_EQ(model->num_params(), 4u * 3 + 3);
  Vec p = model->get_params();
  for (auto& v : p) v += 1.0;
  model->set_params(p);
  EXPECT_EQ(model->get_params(), p);
}

TEST(ModelTest, SetParamsSizeMismatchThrows) {
  auto model = tiny_model();
  Vec wrong(7, 0.0);
  EXPECT_THROW(model->set_params(wrong), Error);
}

TEST(ModelTest, GradientIsDeterministic) {
  auto model = tiny_model();
  Rng rng(5);
  model->init_params(rng);
  const Vec p = model->get_params();
  Tensor x = Tensor::randn({4, 4}, rng);
  std::vector<std::size_t> y{0, 1, 2, 0};
  Vec g1, g2;
  model->loss_and_gradient(p, x, y, g1);
  model->loss_and_gradient(p, x, y, g2);
  EXPECT_EQ(g1, g2);
}

TEST(ModelTest, EvaluatePerfectAndChance) {
  auto model = tiny_model();
  // Weights that copy feature i to logit i (features 0..2).
  Vec p(model->num_params(), 0.0);
  p[0] = 10;   // W(0,0)
  p[5] = 10;   // W(1,1)
  p[10] = 10;  // W(2,2)
  model->set_params(p);
  Tensor x({3, 4});
  x.at({0, 0}) = 1;
  x.at({1, 1}) = 1;
  x.at({2, 2}) = 1;
  const EvalResult r = model->evaluate(x, {0, 1, 2});
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_LT(r.loss, 1e-3);
}

TEST(ModelTest, ZeroGradsClearsAccumulation) {
  auto model = tiny_model();
  Rng rng(6);
  model->init_params(rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  model->forward_backward(x, {0, 1});
  model->zero_grads();
  Vec g;
  model->get_grads(g);
  for (const Scalar v : g) EXPECT_DOUBLE_EQ(v, 0.0);
}

class ModelZooTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelZooTest, BuildsRunsAndRoundTrips) {
  const ModelKind kind = GetParam();
  const std::vector<std::size_t> shape =
      kind == ModelKind::kMiniVgg || kind == ModelKind::kMiniResNet
          ? std::vector<std::size_t>{3, 8, 8}
          : std::vector<std::size_t>{1, 8, 8};
  auto factory = make_model_factory(kind, shape, 4);
  auto model = factory();
  Rng rng(7);
  model->init_params(rng);
  EXPECT_GT(model->num_params(), 0u);

  std::vector<std::size_t> bshape{2};
  bshape.insert(bshape.end(), shape.begin(), shape.end());
  Tensor x = Tensor::randn(bshape, rng);
  std::vector<std::size_t> labels{0, 3};
  Vec grad;
  const Scalar loss =
      model->loss_and_gradient(model->get_params(), x, labels, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(grad.size(), model->num_params());
  Scalar norm = 0;
  for (const Scalar g : grad) norm += g * g;
  EXPECT_GT(norm, 0.0);

  // Factory instances are independent.
  auto other = factory();
  EXPECT_EQ(other->num_params(), model->num_params());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values(ModelKind::kLinearRegression,
                      ModelKind::kLogisticRegression, ModelKind::kMlp,
                      ModelKind::kCnn, ModelKind::kMiniVgg,
                      ModelKind::kMiniResNet),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return to_string(info.param);
    });

TEST(ModelZooTest, GradCheckCnn) {
  auto factory = cnn({1, 8, 8}, 3);
  auto model = factory();
  Rng rng(8);
  model->init_params(rng);
  Tensor x = Tensor::randn({2, 1, 8, 8}, rng);
  const GradCheckResult r =
      check_gradients(*model, model->get_params(), x, {0, 2}, 1e-5, 120);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(ModelZooTest, GradCheckMiniResNet) {
  auto factory = mini_resnet({1, 8, 8}, 3);
  auto model = factory();
  Rng rng(9);
  model->init_params(rng);
  Tensor x = Tensor::randn({2, 1, 8, 8}, rng);
  const GradCheckResult r =
      check_gradients(*model, model->get_params(), x, {1, 2}, 1e-5, 120);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(ModelZooTest, GradCheckLinearRegression) {
  auto factory = linear_regression({1, 4, 4}, 3);
  auto model = factory();
  Rng rng(10);
  model->init_params(rng);
  Tensor x = Tensor::randn({3, 1, 4, 4}, rng);
  const GradCheckResult r =
      check_gradients(*model, model->get_params(), x, {0, 1, 2}, 1e-5, 60);
  EXPECT_LT(r.max_rel_error, 1e-5);
}

TEST(ModelZooTest, CnnRejectsBadGeometry) {
  EXPECT_THROW(cnn({1, 7, 7}, 10), Error);        // not divisible by 4
  EXPECT_THROW(mini_vgg({3, 12, 12}, 10), Error); // not divisible by 8
  EXPECT_THROW(mini_resnet({3, 8, 12}, 10), Error);  // not square
}

}  // namespace
}  // namespace hfl::nn
