// Parameterized property sweeps across the substrate modules: conv-layer
// gradient correctness over a geometry grid, bound-function monotonicity
// over the momentum-parameter grid, compression contracts over keep
// fractions, and aggregation invariants over fleet sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/common/errors.h"
#include "src/common/vec_ops.h"
#include "src/fl/compression.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/flatten.h"
#include "src/nn/gradcheck.h"
#include "src/nn/pool2d.h"
#include "src/theory/bounds.h"

namespace hfl {
namespace {

// ---------------- Conv2d gradcheck over geometry ----------------

using ConvGeometry = std::tuple<int, int, int, int>;  // cin, cout, k, pad

class ConvGradCheckTest : public ::testing::TestWithParam<ConvGeometry> {};

TEST_P(ConvGradCheckTest, AnalyticMatchesNumeric) {
  const auto [cin, cout, k, pad] = GetParam();
  const std::size_t hw = 6;
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(cin, cout, k, pad);
  net->emplace<nn::Flatten>();
  const std::size_t out_hw = hw + 2 * pad - k + 1;
  net->emplace<nn::Dense>(cout * out_hw * out_hw, 3);
  nn::Model model(std::move(net), std::make_unique<nn::SoftmaxCrossEntropy>(),
                  {static_cast<std::size_t>(cin), hw, hw});
  Rng rng(31 + cin * 100 + cout * 10 + k);
  model.init_params(rng);
  Tensor x = Tensor::randn({2, static_cast<std::size_t>(cin), hw, hw}, rng);
  const auto r = nn::check_gradients(model, model.get_params(), x, {0, 2},
                                     1e-5, 80);
  EXPECT_LT(r.max_rel_error, 1e-4)
      << "cin=" << cin << " cout=" << cout << " k=" << k << " pad=" << pad;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradCheckTest,
    ::testing::Values(ConvGeometry{1, 1, 1, 0}, ConvGeometry{1, 2, 3, 1},
                      ConvGeometry{2, 3, 3, 0}, ConvGeometry{3, 2, 5, 2},
                      ConvGeometry{2, 2, 2, 1}, ConvGeometry{1, 4, 5, 0}));

// ---------------- h(x, δ) monotonicity over the (γ, ηβ) grid ------------

using BoundGrid = std::tuple<double, double>;  // gamma, eta*beta

class HGapMonotoneTest : public ::testing::TestWithParam<BoundGrid> {};

TEST_P(HGapMonotoneTest, NonNegativeNonDecreasing) {
  const auto [gamma, eta_beta] = GetParam();
  theory::BoundParams p;
  p.eta = 0.01;
  p.beta = eta_beta / p.eta;
  p.rho = 1.0;
  p.gamma = gamma;
  p.gamma_edge = 0.5;
  Scalar prev = 0;
  for (std::size_t x = 1; x <= 50; ++x) {
    const Scalar h = theory::h_gap(p, x, 1.0);
    EXPECT_GE(h, -1e-10) << "gamma=" << gamma << " x=" << x;
    EXPECT_GE(h, prev - 1e-10) << "gamma=" << gamma << " x=" << x;
    prev = h;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HGapMonotoneTest,
    ::testing::Values(BoundGrid{0.1, 0.01}, BoundGrid{0.3, 0.05},
                      BoundGrid{0.5, 0.02}, BoundGrid{0.7, 0.1},
                      BoundGrid{0.9, 0.01}, BoundGrid{0.5, 0.2}));

// ---------------- s/j scaling across γℓ ----------------

class SGapScalingTest : public ::testing::TestWithParam<double> {};

TEST_P(SGapScalingTest, ProportionalToGammaEdge) {
  const double ge = GetParam();
  theory::BoundParams p;
  p.eta = 0.01;
  p.beta = 1.0;
  p.rho = 2.0;
  p.gamma = 0.5;
  p.gamma_edge = ge;
  theory::BoundParams unit = p;
  unit.gamma_edge = 0.5;
  EXPECT_NEAR(theory::s_gap(p, 10), theory::s_gap(unit, 10) * ge / 0.5,
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Gammas, SGapScalingTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.99));

// ---------------- Compression contracts over keep fractions -------------

class TopKContractTest : public ::testing::TestWithParam<double> {};

TEST_P(TopKContractTest, PayloadAndErrorContracts) {
  const double keep = GetParam();
  Rng rng(7);
  Vec v(200);
  for (auto& x : v) x = rng.normal();
  const Vec original = v;
  fl::TopKCompressor c(keep);
  const std::size_t sent = c.compress(v);

  // Payload is ceil(keep · n), clamped to [1, n].
  const auto expected = std::min<std::size_t>(
      200, std::max<std::size_t>(
               1, static_cast<std::size_t>(std::ceil(keep * 200))));
  EXPECT_EQ(sent, expected);

  // Surviving coordinates are unchanged; zeroed ones had magnitude no larger
  // than any survivor.
  Scalar min_kept = 1e300, max_dropped = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != 0) {
      EXPECT_DOUBLE_EQ(v[i], original[i]);
      min_kept = std::min(min_kept, std::abs(original[i]));
    } else {
      max_dropped = std::max(max_dropped, std::abs(original[i]));
    }
  }
  if (sent < 200) {
    EXPECT_LE(max_dropped, min_kept);
  }
}

INSTANTIATE_TEST_SUITE_P(KeepFractions, TopKContractTest,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.9, 1.0));

class RandomKContractTest : public ::testing::TestWithParam<double> {};

TEST_P(RandomKContractTest, PreservesMeanMagnitude) {
  const double keep = GetParam();
  Vec v(128, 1.0);
  fl::RandomKCompressor c(keep, 17);
  c.compress(v);
  Scalar sum = 0;
  for (const Scalar x : v) sum += x;
  // Each kept coordinate is scaled by n/k, so the sum is preserved exactly
  // for a constant vector.
  EXPECT_NEAR(sum, 128.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(KeepFractions, RandomKContractTest,
                         ::testing::Values(0.05, 0.25, 0.5, 1.0));

// ---------------- Aggregation invariants over fleet sizes ----------------

class AggregationInvariantTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AggregationInvariantTest, WeightedMeanOfEqualVectorsIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Vec weights(n);
  Scalar total = 0;
  for (auto& w : weights) {
    w = rng.uniform(0.1, 1.0);
    total += w;
  }
  for (auto& w : weights) w /= total;

  const Vec value{1.5, -2.0, 0.25};
  std::vector<Vec> vecs(n, value);
  Vec out;
  vec::weighted_sum(vecs, weights, out);
  for (std::size_t i = 0; i < value.size(); ++i) {
    EXPECT_NEAR(out[i], value[i], 1e-12);
  }
}

TEST_P(AggregationInvariantTest, MeanIsWithinComponentwiseEnvelope) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  std::vector<Vec> vecs(n, Vec(4));
  Vec weights(n, 1.0 / static_cast<Scalar>(n));
  for (auto& v : vecs) {
    for (auto& x : v) x = rng.normal();
  }
  Vec out;
  vec::weighted_sum(vecs, weights, out);
  for (std::size_t j = 0; j < 4; ++j) {
    Scalar lo = 1e300, hi = -1e300;
    for (const auto& v : vecs) {
      lo = std::min(lo, v[j]);
      hi = std::max(hi, v[j]);
    }
    EXPECT_GE(out[j], lo - 1e-12);
    EXPECT_LE(out[j], hi + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, AggregationInvariantTest,
                         ::testing::Values(1, 2, 4, 10, 37, 100));

// ---------------- Pooling round-trip over window sizes ----------------

class PoolWindowTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolWindowTest, AvgPoolGradientIsUniformPartition) {
  const std::size_t w = GetParam();
  nn::AvgPool2d pool(w);
  Rng rng(w);
  Tensor x = Tensor::randn({1, 2, w * 3, w * 2}, rng);
  pool.forward(x, true);
  Tensor g = Tensor::full({1, 2, 3, 2}, 1.0);
  Tensor gin = pool.backward(g);
  // Gradient mass is conserved: sum(grad_in) == sum(grad_out).
  Scalar total = 0;
  for (std::size_t i = 0; i < gin.size(); ++i) total += gin[i];
  EXPECT_NEAR(total, 12.0, 1e-9);
}

TEST_P(PoolWindowTest, MaxPoolGradientIsSparse) {
  const std::size_t w = GetParam();
  nn::MaxPool2d pool(w);
  Rng rng(10 + w);
  Tensor x = Tensor::randn({1, 1, w * 2, w * 2}, rng);
  pool.forward(x, true);
  Tensor g = Tensor::full({1, 1, 2, 2}, 1.0);
  Tensor gin = pool.backward(g);
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < gin.size(); ++i) {
    if (gin[i] != 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 4u);  // exactly one winner per window
}

INSTANTIATE_TEST_SUITE_P(Windows, PoolWindowTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hfl
