// Tests for the FL framework: topology mapping, state aggregation helpers,
// and the simulation engine's scheduling/determinism contracts.
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include <numeric>

#include "src/algs/registry.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

namespace hfl::fl {
namespace {

TEST(TopologyTest, UniformLayout) {
  const Topology t = Topology::uniform(3, 4);
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_EQ(t.num_workers(), 12u);
  EXPECT_EQ(t.workers_in_edge(1), 4u);
  EXPECT_EQ(t.edge_of_worker(0), 0u);
  EXPECT_EQ(t.edge_of_worker(4), 1u);
  EXPECT_EQ(t.edge_of_worker(11), 2u);
  EXPECT_EQ(t.workers_of_edge(1), (std::vector<WorkerId>{4, 5, 6, 7}));
}

TEST(TopologyTest, HeterogeneousEdges) {
  const Topology t({1, 3, 2});
  EXPECT_EQ(t.num_workers(), 6u);
  EXPECT_EQ(t.workers_of_edge(0), (std::vector<WorkerId>{0}));
  EXPECT_EQ(t.workers_of_edge(2), (std::vector<WorkerId>{4, 5}));
}

TEST(TopologyTest, RejectsInvalid) {
  EXPECT_THROW(Topology({}), Error);
  EXPECT_THROW(Topology({2, 0}), Error);
  const Topology t = Topology::uniform(2, 2);
  EXPECT_THROW(t.edge_of_worker(4), Error);
  EXPECT_THROW(t.workers_of_edge(2), Error);
}

TEST(StateTest, EdgeAggregationWeights) {
  const Topology topo({2, 1});
  std::vector<WorkerState> workers(3);
  for (std::size_t i = 0; i < 3; ++i) {
    workers[i].id = i;
    workers[i].edge = topo.edge_of_worker(i);
  }
  workers[0].weight_in_edge = 0.25;
  workers[1].weight_in_edge = 0.75;
  workers[2].weight_in_edge = 1.0;
  workers[0].x = {4, 0};
  workers[1].x = {0, 4};
  workers[2].x = {1, 1};
  Vec out;
  const WorkerSet view(&workers);
  aggregate_edge(topo, 0, view, worker_x, out);
  EXPECT_EQ(out, (Vec{1.0, 3.0}));
  aggregate_edge(topo, 1, view, worker_x, out);
  EXPECT_EQ(out, (Vec{1.0, 1.0}));
}

TEST(StateTest, GlobalAggregationUsesGlobalWeights) {
  std::vector<WorkerState> workers(2);
  workers[0].weight_global = 0.5;
  workers[1].weight_global = 0.5;
  workers[0].y = {2, 0};
  workers[1].y = {0, 2};
  Vec out;
  const WorkerSet view(&workers);
  aggregate_global(view, worker_y, out);
  EXPECT_EQ(out, (Vec{1.0, 1.0}));
}

// ------------------------- engine fixtures -------------------------

struct EngineFixture {
  data::TrainTest dataset;
  Topology topo;
  data::Partition partition;
  nn::ModelFactory factory;

  explicit EngineFixture(std::uint64_t seed = 1)
      : topo(Topology::uniform(2, 2)) {
    Rng rng(seed);
    data::SyntheticSpec spec;
    spec.sample_shape = {4};       // tiny flat features
    spec.num_classes = 3;
    spec.train_size = 120;
    spec.test_size = 60;
    spec.separation = 1.0;
    spec.noise = 0.5;
    // Flat sample shapes need a 3-axis shape for make_synthetic's templates.
    spec.sample_shape = {1, 2, 2};
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, topo.num_workers(), rng);
    factory = nn::logistic_regression({1, 2, 2}, 3);
  }

  RunConfig config() const {
    RunConfig cfg;
    cfg.total_iterations = 40;
    cfg.tau = 5;
    cfg.pi = 2;
    cfg.eta = 0.05;
    cfg.gamma = 0.5;
    cfg.gamma_edge = 0.5;
    cfg.batch_size = 8;
    cfg.seed = 7;
    cfg.num_threads = 2;
    return cfg;
  }
};

TEST(EngineTest, CurveHasInitialAndCloudSyncPoints) {
  EngineFixture f;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, f.config());
  auto alg = algs::make_algorithm("HierAdMo");
  const RunResult r = engine.run(*alg);
  // t=0 plus P = T/(tau*pi) = 4 cloud syncs.
  ASSERT_EQ(r.curve.size(), 5u);
  EXPECT_EQ(r.curve[0].iteration, 0u);
  EXPECT_EQ(r.curve[1].iteration, 10u);
  EXPECT_EQ(r.curve[4].iteration, 40u);
  EXPECT_EQ(r.final_accuracy, r.curve.back().test_accuracy);
}

TEST(EngineTest, EvalEveryAddsIntermediatePoints) {
  EngineFixture f;
  RunConfig cfg = f.config();
  cfg.eval_every = 5;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  auto alg = algs::make_algorithm("HierAdMo");
  const RunResult r = engine.run(*alg);
  // t=0, then every 5 iterations: 5,15,25,35 intermediates + 10,20,30,40.
  ASSERT_EQ(r.curve.size(), 9u);
  EXPECT_EQ(r.curve[1].iteration, 5u);
  EXPECT_EQ(r.curve[2].iteration, 10u);
}

TEST(EngineTest, DeterministicAcrossRunsAndThreadCounts) {
  EngineFixture f;
  RunConfig cfg1 = f.config();
  cfg1.num_threads = 1;
  RunConfig cfg4 = f.config();
  cfg4.num_threads = 4;
  Engine e1(f.factory, f.dataset, f.partition, f.topo, cfg1);
  Engine e4(f.factory, f.dataset, f.partition, f.topo, cfg4);
  auto a1 = algs::make_algorithm("HierAdMo");
  auto a2 = algs::make_algorithm("HierAdMo");
  const RunResult r1 = e1.run(*a1);
  const RunResult r4 = e4.run(*a2);
  ASSERT_EQ(r1.curve.size(), r4.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.curve[i].test_accuracy, r4.curve[i].test_accuracy);
    EXPECT_DOUBLE_EQ(r1.curve[i].test_loss, r4.curve[i].test_loss);
  }
}

TEST(EngineTest, RepeatedRunsFromSameEngineAreIdentical) {
  EngineFixture f;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, f.config());
  auto alg = algs::make_algorithm("FedAvg");
  RunConfig cfg2 = f.config();
  cfg2.tau = 10;
  cfg2.pi = 1;
  Engine engine2(f.factory, f.dataset, f.partition, f.topo, cfg2);
  const RunResult r1 = engine2.run(*alg);
  const RunResult r2 = engine2.run(*alg);
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.curve[i].test_loss, r2.curve[i].test_loss);
  }
}

TEST(EngineTest, TrainingImprovesOverInitial) {
  EngineFixture f;
  RunConfig cfg = f.config();
  cfg.total_iterations = 100;
  cfg.tau = 5;
  cfg.pi = 2;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  auto alg = algs::make_algorithm("HierAdMo");
  const RunResult r = engine.run(*alg);
  EXPECT_GT(r.final_accuracy, r.curve.front().test_accuracy + 0.2);
}

TEST(EngineTest, TwoTierRequiresPiOne) {
  EngineFixture f;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, f.config());
  auto alg = algs::make_algorithm("FedAvg");
  EXPECT_THROW(engine.run(*alg), Error);  // pi == 2 with a two-tier algorithm
}

TEST(EngineTest, RejectsBadConfigs) {
  EngineFixture f;
  RunConfig cfg = f.config();
  cfg.total_iterations = 37;  // not a multiple of tau*pi
  EXPECT_THROW(Engine(f.factory, f.dataset, f.partition, f.topo, cfg), Error);

  data::Partition wrong = f.partition;
  wrong.pop_back();
  EXPECT_THROW(Engine(f.factory, f.dataset, wrong, f.topo, f.config()), Error);
}

TEST(EngineTest, IterationsToAccuracyMonotoneLookup) {
  RunResult r;
  r.curve = {{0, 1.0, 0.1}, {10, 0.5, 0.6}, {20, 0.3, 0.9}};
  EXPECT_EQ(r.iterations_to_accuracy(0.55), 10u);
  EXPECT_EQ(r.iterations_to_accuracy(0.85), 20u);
  // Reached at t = 0 and never reached are distinct answers now.
  EXPECT_EQ(r.iterations_to_accuracy(0.05), 0u);
  // npos is an alias of the shared hfl::kNeverIndex sentinel.
  static_assert(RunResult::npos == kNeverIndex);
  EXPECT_EQ(r.iterations_to_accuracy(0.95), kNeverIndex);
  EXPECT_DOUBLE_EQ(r.best_accuracy(), 0.9);
}

TEST(EngineTest, EvaluateMatchesModelEvaluate) {
  EngineFixture f;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, f.config());
  auto model = f.factory();
  Rng rng(3);
  model->init_params(rng);
  const Vec params = model->get_params();

  const nn::EvalResult via_engine = engine.evaluate(params);

  // Reference: single batch over the whole test set.
  std::vector<std::size_t> idx(f.dataset.test.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Tensor x;
  std::vector<std::size_t> y;
  f.dataset.test.gather(idx, x, y);
  model->set_params(params);
  const nn::EvalResult direct = model->evaluate(x, y);

  EXPECT_NEAR(via_engine.accuracy, direct.accuracy, 1e-12);
  EXPECT_NEAR(via_engine.loss, direct.loss, 1e-9);
}

}  // namespace
}  // namespace hfl::fl
