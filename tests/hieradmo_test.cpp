// Tests for the core HierAdMo algorithm (Algorithm 1): the γℓ clamp of
// eq. (7), the cosine aggregation of eq. (6), the edge/cloud update algebra,
// redistribution invariants, and reduction properties (γ = γℓ = 0 recovers
// HierFAVG; one worker with γℓ = 0 recovers FedNAG).
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include "src/algs/registry.h"
#include "src/core/hieradmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

namespace hfl::core {
namespace {

TEST(ClampGammaTest, MatchesEquation7) {
  HierAdMo alg;
  EXPECT_DOUBLE_EQ(alg.clamp_gamma(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(alg.clamp_gamma(-0.001), 0.0);
  EXPECT_DOUBLE_EQ(alg.clamp_gamma(0.0), 0.0);
  EXPECT_DOUBLE_EQ(alg.clamp_gamma(0.5), 0.5);
  EXPECT_DOUBLE_EQ(alg.clamp_gamma(0.98999), 0.98999);
  EXPECT_DOUBLE_EQ(alg.clamp_gamma(0.99), 0.99);
  EXPECT_DOUBLE_EQ(alg.clamp_gamma(1.0), 0.99);
}

TEST(ClampGammaTest, CustomClampMax) {
  HierAdMoOptions opt;
  opt.clamp_max = 0.5;
  HierAdMo alg(opt);
  EXPECT_DOUBLE_EQ(alg.clamp_gamma(0.7), 0.5);
  HierAdMoOptions bad;
  bad.clamp_max = 1.5;
  EXPECT_THROW(HierAdMo{bad}, Error);
}

// Builds a minimal hand-crafted context around given worker accumulators.
struct FakeSetup {
  fl::Topology topo{std::vector<std::size_t>{2}};  // one edge, two workers
  fl::RunConfig cfg;
  std::vector<fl::WorkerState> workers;
  fl::WorkerSet worker_set{&workers};
  std::vector<fl::EdgeState> edges;
  fl::CloudState cloud;

  FakeSetup() {
    workers.resize(2);
    for (std::size_t i = 0; i < 2; ++i) {
      workers[i].id = i;
      workers[i].edge = 0;
      workers[i].weight_in_edge = 0.5;
      workers[i].weight_global = 0.5;
    }
    edges.resize(1);
    edges[0].id = 0;
    edges[0].weight_global = 1.0;
  }

  fl::Context context() {
    return fl::Context{&cfg, &topo, &worker_set, &edges, &cloud, 0};
  }
};

TEST(CosThetaTest, WeightedCombinationOfPerWorkerCosines) {
  FakeSetup s;
  // Worker 0: −Σg = (1,0), Σy = (1,0) -> cos = 1.
  s.workers[0].sum_grad = {-1, 0};
  s.workers[0].sum_y = {1, 0};
  // Worker 1: −Σg = (1,0), Σy = (−1,0) -> cos = −1.
  s.workers[1].sum_grad = {-1, 0};
  s.workers[1].sum_y = {-1, 0};

  HierAdMo alg;  // default: kMomentumValue signal
  fl::Context ctx = s.context();
  EXPECT_NEAR(alg.compute_cos_theta(ctx, s.edges[0]), 0.0, 1e-12);

  // Unequal weights shift the combination.
  s.workers[0].weight_in_edge = 0.75;
  s.workers[1].weight_in_edge = 0.25;
  EXPECT_NEAR(alg.compute_cos_theta(ctx, s.edges[0]), 0.5, 1e-12);
}

TEST(CosThetaTest, VelocitySignalUsesSumV) {
  FakeSetup s;
  s.workers[0].sum_grad = {-2, 0};
  s.workers[0].sum_y = {0, 5};   // orthogonal — would give 0
  s.workers[0].sum_v = {4, 0};   // aligned — gives 1
  s.workers[1].sum_grad = {-2, 0};
  s.workers[1].sum_y = {0, 5};
  s.workers[1].sum_v = {4, 0};

  HierAdMoOptions opt;
  opt.signal = HierAdMoOptions::Signal::kVelocity;
  HierAdMo vel(opt);
  HierAdMo lit;  // literal Σy signal
  fl::Context ctx = s.context();
  EXPECT_NEAR(vel.compute_cos_theta(ctx, s.edges[0]), 1.0, 1e-12);
  EXPECT_NEAR(lit.compute_cos_theta(ctx, s.edges[0]), 0.0, 1e-12);
}

TEST(EdgeSyncTest, UpdateAlgebraMatchesAlgorithm1) {
  FakeSetup s;
  s.cfg.gamma_edge = 0.5;
  const std::size_t n = 2;
  s.workers[0].x = {2, 0};
  s.workers[1].x = {0, 2};
  s.workers[0].y = {1, 1};
  s.workers[1].y = {3, 3};
  for (auto& w : s.workers) {
    w.sum_grad.assign(n, 0.0);
    w.sum_y.assign(n, 0.0);
    w.sum_v.assign(n, 0.0);
    w.sum_grad = {-1, -1};  // aligned with Σy below -> cosθ = 1 -> γℓ = 0.99
    w.sum_y = {1, 1};
  }
  s.edges[0].x_plus = {0, 0};
  s.edges[0].y_plus = {0, 0};  // y_{ℓ+}^{(k−1)τ}

  HierAdMo alg;
  fl::Context ctx = s.context();
  alg.edge_sync(ctx, s.edges[0], 1);

  // γℓ = clamp(1) = 0.99.
  EXPECT_DOUBLE_EQ(s.edges[0].gamma_edge, 0.99);
  // y_{ℓ−} = avg y = (2, 2).
  EXPECT_EQ(s.edges[0].y_minus, (Vec{2, 2}));
  // y_{ℓ+} = avg x = (1, 1); x_{ℓ+} = y_{ℓ+} + 0.99 (y_{ℓ+} − prev) =
  // (1.99, 1.99).
  EXPECT_EQ(s.edges[0].y_plus, (Vec{1, 1}));
  EXPECT_NEAR(s.edges[0].x_plus[0], 1.99, 1e-12);
  // Redistribution: every worker got y_{ℓ−} and x_{ℓ+}, accumulators reset.
  for (const auto& w : s.workers) {
    EXPECT_EQ(w.y, s.edges[0].y_minus);
    EXPECT_EQ(w.x, s.edges[0].x_plus);
    EXPECT_EQ(w.sum_grad, (Vec{0, 0}));
    EXPECT_EQ(w.sum_y, (Vec{0, 0}));
  }
}

TEST(EdgeSyncTest, FixedGammaIgnoresCosine) {
  FakeSetup s;
  s.cfg.gamma_edge = 0.3;
  for (auto& w : s.workers) {
    w.x = {1, 1};
    w.y = {1, 1};
    w.sum_grad = {5, 5};  // opposed to Σy -> adaptive would pick 0
    w.sum_y = {1, 1};
    w.sum_v = {1, 1};
  }
  s.edges[0].x_plus = {1, 1};
  s.edges[0].y_plus = {1, 1};

  HierAdMoOptions opt;
  opt.adaptive = false;
  HierAdMo alg(opt);
  fl::Context ctx = s.context();
  alg.edge_sync(ctx, s.edges[0], 1);
  EXPECT_DOUBLE_EQ(s.edges[0].gamma_edge, 0.3);
}

TEST(CloudSyncTest, AggregatesAndRedistributesEverything) {
  FakeSetup s;
  // Two edges this time.
  s.topo = fl::Topology({1, 1});
  s.workers[0].edge = 0;
  s.workers[1].edge = 1;
  s.workers[0].weight_in_edge = 1.0;
  s.workers[1].weight_in_edge = 1.0;
  s.edges.resize(2);
  s.edges[0].id = 0;
  s.edges[1].id = 1;
  s.edges[0].weight_global = 0.25;
  s.edges[1].weight_global = 0.75;
  s.edges[0].y_minus = {4, 0};
  s.edges[1].y_minus = {0, 4};
  s.edges[0].x_plus = {8, 0};
  s.edges[1].x_plus = {0, 8};
  s.cloud.x.assign(2, 0.0);
  s.cloud.y.assign(2, 0.0);

  HierAdMo alg;
  fl::Context ctx = s.context();
  alg.cloud_sync(ctx, 1);

  EXPECT_EQ(s.cloud.y, (Vec{1, 3}));
  EXPECT_EQ(s.cloud.x, (Vec{2, 6}));
  for (const auto& e : s.edges) {
    EXPECT_EQ(e.y_minus, s.cloud.y);
    EXPECT_EQ(e.x_plus, s.cloud.x);
  }
  for (const auto& w : s.workers) {
    EXPECT_EQ(w.y, s.cloud.y);
    EXPECT_EQ(w.x, s.cloud.x);
  }
}

// ------------------------- reduction properties -------------------------

struct ReductionFixture {
  data::TrainTest dataset;
  fl::Topology topo{fl::Topology::uniform(2, 2)};
  data::Partition partition;
  nn::ModelFactory factory;

  ReductionFixture() {
    Rng rng(42);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 2, 2};
    spec.num_classes = 3;
    spec.train_size = 120;
    spec.test_size = 60;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, 4, rng);
    factory = nn::logistic_regression({1, 2, 2}, 3);
  }
};

TEST(ReductionTest, ZeroMomentaRecoverHierFavg) {
  // With γ = 0 (worker NAG degenerates to SGD) and fixed γℓ = 0 (no edge
  // momentum), HierAdMo-R is algebraically identical to HierFAVG.
  ReductionFixture f;
  fl::RunConfig cfg;
  cfg.total_iterations = 40;
  cfg.tau = 5;
  cfg.pi = 2;
  cfg.eta = 0.05;
  cfg.gamma = 0.0;  // NAG with γ = 0 is exactly SGD
  cfg.gamma_edge = 0.0;
  cfg.batch_size = 8;
  cfg.seed = 5;
  fl::Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);

  HierAdMoOptions opt;
  opt.adaptive = false;
  HierAdMo reduced(opt);
  auto hierfavg = algs::make_algorithm("HierFAVG");

  const fl::RunResult r1 = engine.run(reduced);
  const fl::RunResult r2 = engine.run(*hierfavg);
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_NEAR(r1.curve[i].test_loss, r2.curve[i].test_loss, 1e-9);
    EXPECT_DOUBLE_EQ(r1.curve[i].test_accuracy, r2.curve[i].test_accuracy);
  }
}

TEST(ReductionTest, SingleWorkerZeroEdgeMomentumEqualsFedNag) {
  // One worker, one edge, γℓ = 0: all aggregations are identities, so
  // HierAdMo-R degenerates to pure worker NAG — exactly FedNAG with one
  // worker and a matched period.
  ReductionFixture f;
  const fl::Topology topo = fl::Topology::uniform(1, 1);
  Rng rng(8);
  data::Partition partition =
      data::partition_iid(f.dataset.train, 1, rng);

  fl::RunConfig cfg3;
  cfg3.total_iterations = 40;
  cfg3.tau = 5;
  cfg3.pi = 2;
  cfg3.eta = 0.05;
  cfg3.gamma = 0.5;
  cfg3.gamma_edge = 0.0;
  cfg3.batch_size = 8;
  cfg3.seed = 5;
  fl::RunConfig cfg2 = cfg3;
  cfg2.tau = 10;
  cfg2.pi = 1;

  fl::Engine e3(f.factory, f.dataset, partition, topo, cfg3);
  fl::Engine e2(f.factory, f.dataset, partition, topo, cfg2);

  HierAdMoOptions opt;
  opt.adaptive = false;
  HierAdMo reduced(opt);
  auto fednag = algs::make_algorithm("FedNAG");

  const fl::RunResult r1 = e3.run(reduced);
  const fl::RunResult r2 = e2.run(*fednag);
  // Cloud-sync points coincide every 10 iterations.
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_EQ(r1.curve[i].iteration, r2.curve[i].iteration);
    EXPECT_NEAR(r1.curve[i].test_loss, r2.curve[i].test_loss, 1e-9);
  }
}

TEST(AdaptiveGammaTest, StaysInClampRangeDuringTraining) {
  ReductionFixture f;
  fl::RunConfig cfg;
  cfg.total_iterations = 30;
  cfg.tau = 5;
  cfg.pi = 2;
  cfg.eta = 0.05;
  cfg.gamma = 0.5;
  cfg.gamma_edge = 0.5;
  cfg.batch_size = 8;
  cfg.seed = 6;

  // Recorder wraps HierAdMo and logs γℓ after every edge sync.
  class Recorder final : public fl::Algorithm {
   public:
    HierAdMo inner;
    std::vector<Scalar> gammas;
    std::string name() const override { return inner.name(); }
    bool three_tier() const override { return true; }
    void init(fl::Context& ctx) override { inner.init(ctx); }
    void local_step(fl::Context& ctx, fl::WorkerState& w) override {
      inner.local_step(ctx, w);
    }
    void edge_sync(fl::Context& ctx, fl::EdgeState& e,
                   std::size_t k) override {
      inner.edge_sync(ctx, e, k);
      gammas.push_back(e.gamma_edge);
    }
    void cloud_sync(fl::Context& ctx, std::size_t p) override {
      inner.cloud_sync(ctx, p);
    }
  };

  Recorder rec;
  fl::Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  engine.run(rec);
  ASSERT_FALSE(rec.gammas.empty());
  for (const Scalar g : rec.gammas) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 0.99);
  }
}

TEST(NamesTest, AdaptiveFlagControlsName) {
  EXPECT_EQ(make_hieradmo()->name(), "HierAdMo");
  EXPECT_EQ(make_hieradmo_r()->name(), "HierAdMo-R");
}

}  // namespace
}  // namespace hfl::core
