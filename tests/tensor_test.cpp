// Tests for tensor/tensor: construction, indexing, reshape, factories.
#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

namespace hfl {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 0.0);
}

TEST(TensorTest, AdoptsData) {
  Tensor t({2, 2}, Vec{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(t.at({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(t.at({0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(t.at({1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(t.at({1, 1}), 4.0);
}

TEST(TensorTest, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, Vec{1, 2, 3}), Error);
}

TEST(TensorTest, RowMajorLayout) {
  Tensor t({2, 3, 4});
  t.at({1, 2, 3}) = 7.0;
  EXPECT_DOUBLE_EQ(t[1 * 12 + 2 * 4 + 3], 7.0);
}

TEST(TensorTest, AtChecksRankAndBounds) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at({0}), Error);
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0, 0, 0}), Error);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, Vec{1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_DOUBLE_EQ(t.at({2, 1}), 6.0);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::full({3}, 2.5);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(t[i], 2.5);
}

TEST(TensorTest, FillOverwrites) {
  Tensor t({4});
  t.fill(-1.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t[i], -1.0);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(5);
  Tensor t = Tensor::randn({100, 100}, rng, 2.0);
  Scalar sum = 0, sum_sq = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum_sq += t[i] * t[i];
  }
  const Scalar n = static_cast<Scalar>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.2);
}

TEST(TensorTest, SameShape) {
  Tensor a({2, 3}), b({2, 3}), c({3, 2});
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.shape_string(), "(2, 3, 4)");
}

TEST(TensorTest, DimAccessor) {
  Tensor t({5, 7});
  EXPECT_EQ(t.dim(0), 5u);
  EXPECT_EQ(t.dim(1), 7u);
  EXPECT_THROW(t.dim(2), Error);
}

TEST(TensorTest, EmptyDefault) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rank(), 0u);
}

}  // namespace
}  // namespace hfl
