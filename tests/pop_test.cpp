// Unit coverage for the population subsystem (src/pop) and its RNG/replay
// foundations:
//
//   * Rng::fork_nth reproduces the mutating fork sequence statelessly, and
//     save_state/from_state round-trips mid-stream — the primitives behind
//     lazy worker materialization and spill/restore.
//   * AliasSampler draws match the weight distribution (frequency test) and
//     are deterministic in the stream.
//   * FenwickSampler matches a naive sequential weighted-WOR reference draw
//     for draw (integer weights keep every partial sum exact in double, so
//     tree-order and linear-order prefix sums are bit-equal), restores its
//     weights after every cohort, and its set frequencies match the exact
//     enumeration probabilities.
//   * Slab round-trips blobs on both backends and keeps honest byte
//     accounting.
//   * Population descriptors reproduce the dense engine's weight arithmetic.
//   * SparseFaultPlan answers every (interval, entity) query bit-identically
//     to the dense FaultPlan built from the same config, in any query order.
//   * CohortStore: deterministic cohort draws, spill → restore round-trips
//     every mutable field (including batch-stream checkpoints) bit-exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/errors.h"
#include "src/common/rng.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/nn/models.h"
#include "src/pop/cohort_store.h"
#include "src/pop/population.h"
#include "src/pop/sampler.h"
#include "src/pop/slab.h"
#include "src/sim/fault_plan.h"
#include "src/sim/sparse_fault_plan.h"

namespace hfl {
namespace {

TEST(RngCheckpointTest, ForkNthMatchesForkSequence) {
  Rng parent(99);
  std::vector<std::uint64_t> tags = {0x1217, 1000, 1001, 0xC0FFEE};
  std::vector<std::uint64_t> probes;
  for (const std::uint64_t tag : tags) {
    Rng child = parent.fork(tag);
    probes.push_back(child.next_u64());
  }
  // fork() mutates only the counter, so a fresh Rng with the same seed can
  // re-derive any fork in the sequence by (tag, ordinal).
  const Rng fresh(99);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    Rng child = fresh.fork_nth(tags[i], i + 1);
    EXPECT_EQ(child.next_u64(), probes[i]) << "fork #" << (i + 1);
  }
}

TEST(RngCheckpointTest, SaveRestoreMidStream) {
  Rng rng(7);
  for (int i = 0; i < 17; ++i) rng.uniform();
  rng.fork(3);  // counter state must round-trip too
  const RngState snap = rng.save_state();
  std::vector<Scalar> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(rng.uniform());
  Rng child = rng.fork(9);
  const Scalar child_probe = child.uniform();

  Rng back = Rng::from_state(snap);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(back.uniform(), expect[i]);
  Rng back_child = back.fork(9);
  EXPECT_EQ(back_child.uniform(), child_probe);
}

TEST(AliasSamplerTest, FrequenciesMatchWeights) {
  const std::vector<Scalar> weights = {1.0, 2.0, 3.0, 4.0};
  const pop::AliasSampler sampler(weights);
  Rng rng(11);
  const std::size_t draws = 200000;
  std::vector<std::size_t> count(weights.size(), 0);
  for (std::size_t d = 0; d < draws; ++d) ++count[sampler.draw(rng)];
  const Scalar total = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const Scalar expected = weights[i] / total;
    const Scalar observed =
        static_cast<Scalar>(count[i]) / static_cast<Scalar>(draws);
    EXPECT_NEAR(observed, expected, 0.01) << "index " << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverDrawn) {
  const pop::AliasSampler sampler({2.0, 0.0, 1.0, 0.0});
  Rng rng(5);
  for (int d = 0; d < 5000; ++d) {
    const std::size_t i = sampler.draw(rng);
    EXPECT_TRUE(i == 0 || i == 2);
  }
}

TEST(AliasSamplerTest, RejectsDegenerateWeights) {
  EXPECT_THROW(pop::AliasSampler({}), Error);
  EXPECT_THROW(pop::AliasSampler({0.0, 0.0}), Error);
  EXPECT_THROW(pop::AliasSampler({1.0, -0.5}), Error);
}

// Naive sequential weighted draw without replacement: same uniforms, linear
// prefix scan. Integer-valued weights keep every partial sum exact, so the
// Fenwick tree's differently-associated sums are bit-equal and the two
// implementations must agree index for index.
std::vector<std::uint32_t> naive_wor(std::vector<Scalar> w, std::size_t k,
                                     Rng& rng) {
  std::vector<std::uint32_t> out;
  for (std::size_t d = 0; d < k; ++d) {
    Scalar total = 0.0;
    for (const Scalar x : w) total += x;
    const Scalar target = rng.uniform() * total;
    Scalar acc = 0.0;
    std::size_t pick = w.size();
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (w[i] <= 0.0) continue;
      acc += w[i];
      if (target < acc) {
        pick = i;
        break;
      }
    }
    if (pick == w.size()) {  // FP edge: target == total
      for (std::size_t i = w.size(); i-- > 0;) {
        if (w[i] > 0.0) {
          pick = i;
          break;
        }
      }
    }
    out.push_back(static_cast<std::uint32_t>(pick));
    w[pick] = 0.0;
  }
  return out;
}

TEST(FenwickSamplerTest, MatchesNaiveReferenceDrawForDraw) {
  Rng meta(21);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + meta.uniform_index(40);
    std::vector<Scalar> weights(n);
    std::size_t positive = 0;
    for (Scalar& w : weights) {
      w = static_cast<Scalar>(meta.uniform_index(8));  // integers, some zero
      if (w > 0.0) ++positive;
    }
    if (positive == 0) {
      weights[0] = 3.0;
      positive = 1;
    }
    const std::size_t k = 1 + meta.uniform_index(positive);
    pop::FenwickSampler sampler(weights);
    Rng a(1000 + trial), b(1000 + trial);
    EXPECT_EQ(sampler.sample(k, a), naive_wor(weights, k, b))
        << "trial " << trial << " n=" << n << " k=" << k;
  }
}

TEST(FenwickSamplerTest, RestoresWeightsBetweenCohorts) {
  pop::FenwickSampler sampler({1.0, 2.0, 3.0, 4.0, 5.0});
  Rng a(3), b(3);
  const auto first = sampler.sample(3, a);
  const auto second = sampler.sample(3, b);  // same stream → same cohort
  EXPECT_EQ(first, second);
}

TEST(FenwickSamplerTest, SetFrequenciesMatchEnumeration) {
  // P({a,b}) = P(a)P(b | not a) + P(b)P(a | not b), enumerated exactly.
  const std::vector<Scalar> w = {1.0, 2.0, 3.0};
  const Scalar total = 6.0;
  std::map<std::pair<int, int>, Scalar> exact;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      const std::pair<int, int> key{std::min(a, b), std::max(a, b)};
      exact[key] += (w[a] / total) * (w[b] / (total - w[a]));
    }
  }
  pop::FenwickSampler sampler(w);
  Rng rng(17);
  const std::size_t trials = 60000;
  std::map<std::pair<int, int>, std::size_t> count;
  for (std::size_t t = 0; t < trials; ++t) {
    auto ids = sampler.sample(2, rng);
    const int a = static_cast<int>(ids[0]), b = static_cast<int>(ids[1]);
    ++count[{std::min(a, b), std::max(a, b)}];
  }
  for (const auto& [key, p] : exact) {
    const Scalar observed =
        static_cast<Scalar>(count[key]) / static_cast<Scalar>(trials);
    EXPECT_NEAR(observed, p, 0.01)
        << "{" << key.first << "," << key.second << "}";
  }
}

TEST(FenwickSamplerTest, RejectsOversizedCohort) {
  pop::FenwickSampler sampler({1.0, 0.0, 2.0});
  Rng rng(1);
  EXPECT_NO_THROW(sampler.sample(2, rng));
  EXPECT_THROW(sampler.sample(3, rng), Error);  // only 2 positive weights
}

void slab_round_trip(pop::SlabConfig cfg) {
  pop::Slab slab(cfg);
  const std::vector<char> a = {'a', 'b', 'c'};
  const std::vector<char> b(1000, 'x');
  slab.put(7, a);
  slab.put(42, b);
  EXPECT_TRUE(slab.contains(7));
  EXPECT_FALSE(slab.contains(8));
  std::vector<char> out;
  slab.get(7, out);
  EXPECT_EQ(out, a);
  slab.get(42, out);
  EXPECT_EQ(out, b);

  const std::vector<char> a2 = {'z', 'z'};
  slab.put(7, a2);  // rewrite
  slab.get(7, out);
  EXPECT_EQ(out, a2);
  EXPECT_EQ(slab.num_entries(), 2u);
  EXPECT_GE(slab.peak_bytes(), slab.bytes() > 0 ? 1u : 0u);
  EXPECT_EQ(slab.bytes_written(), a.size() + b.size() + a2.size());
  slab.clear();
  EXPECT_EQ(slab.num_entries(), 0u);
  EXPECT_FALSE(slab.contains(7));
}

TEST(SlabTest, MemoryBackendRoundTrip) {
  slab_round_trip(pop::SlabConfig{});
}

TEST(SlabTest, FileBackendRoundTrip) {
  pop::SlabConfig cfg;
  cfg.backend = pop::SlabConfig::Backend::kFile;
  cfg.path = ::testing::TempDir() + "hfl_pop_slab_test.bin";
  slab_round_trip(cfg);
  std::remove(cfg.path.c_str());
}

struct PopFixture {
  data::TrainTest dataset;
  fl::Topology topo{fl::Topology::uniform(2, 4)};  // 2 edges × 4 workers
  data::Partition partition;
  nn::ModelFactory factory;
  fl::RunConfig cfg;

  PopFixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 2, 2};
    spec.num_classes = 2;
    spec.train_size = 64;
    spec.test_size = 16;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, topo.num_workers(), rng);
    factory = nn::logistic_regression({1, 2, 2}, 2);
    cfg.total_iterations = 8;
    cfg.tau = 2;
    cfg.pi = 2;
    cfg.batch_size = 4;
    cfg.seed = 5;
  }
};

TEST(PopulationTest, DescriptorsMatchDenseArithmetic) {
  PopFixture f;
  const pop::Population pop(f.topo, f.partition);
  ASSERT_EQ(pop.num_workers(), f.topo.num_workers());
  std::size_t total = 0;
  std::vector<std::size_t> per_edge(f.topo.num_edges(), 0);
  for (std::size_t w = 0; w < f.topo.num_workers(); ++w) {
    total += f.partition[w].size();
    per_edge[f.topo.edge_of_worker(w)] += f.partition[w].size();
  }
  for (std::size_t w = 0; w < pop.num_workers(); ++w) {
    EXPECT_EQ(pop.edge_of(w), f.topo.edge_of_worker(w));
    EXPECT_EQ(pop.num_samples(w), f.partition[w].size());
    EXPECT_EQ(pop.weight_in_edge(w),
              static_cast<Scalar>(f.partition[w].size()) /
                  static_cast<Scalar>(per_edge[f.topo.edge_of_worker(w)]));
    EXPECT_EQ(pop.weight_global(w),
              static_cast<Scalar>(f.partition[w].size()) /
                  static_cast<Scalar>(total));
  }
  const std::vector<Scalar> base = pop.base_weights();
  ASSERT_EQ(base.size(), pop.num_workers());
  for (std::size_t w = 0; w < base.size(); ++w) {
    EXPECT_EQ(base[w], static_cast<Scalar>(f.partition[w].size()));
  }
}

sim::FaultConfig zoo_config(int which) {
  sim::FaultConfig fc;
  fc.seed = 100 + which;
  switch (which) {
    case 0:
      fc.dropout.prob = 0.3;
      break;
    case 1:
      fc.churn.p_fail = 0.2;
      fc.churn.p_recover = 0.6;
      fc.churn.p_start_down = 0.25;
      break;
    case 2:
      fc.straggler.fraction = 0.4;
      fc.straggler.slowdown = 2.0;
      fc.straggler.jitter = 0.5;
      fc.straggler.deadline_slowdown = 2.5;
      break;
    case 3:
      fc.link.loss_prob = 0.35;
      fc.link.max_retries = 2;
      break;
    case 4:
      fc.edge_outage.prob = 0.3;
      break;
    default:  // everything at once
      fc.dropout.prob = 0.15;
      fc.churn.p_fail = 0.1;
      fc.churn.p_recover = 0.7;
      fc.churn.p_start_down = 0.1;
      fc.straggler.fraction = 0.3;
      fc.straggler.slowdown = 1.8;
      fc.straggler.jitter = 0.4;
      fc.straggler.deadline_slowdown = 2.2;
      fc.link.loss_prob = 0.2;
      fc.link.max_retries = 3;
      fc.edge_outage.prob = 0.2;
      break;
  }
  return fc;
}

TEST(SparseFaultPlanTest, MatchesDensePlanOverModelZoo) {
  PopFixture f;
  fl::RunConfig cfg = f.cfg;
  cfg.total_iterations = 12;  // 6 intervals
  for (int which = 0; which < 6; ++which) {
    const sim::FaultConfig fc = zoo_config(which);
    const sim::FaultPlan dense(f.topo, cfg, fc);
    const sim::SparseFaultPlan sparse(f.topo.num_workers(),
                                      f.topo.num_edges(), fc);
    for (std::size_t k = 1; k <= dense.num_intervals(); ++k) {
      for (std::size_t w = 0; w < f.topo.num_workers(); ++w) {
        EXPECT_EQ(sparse.worker_available(k, w), dense.worker_available(k, w))
            << "zoo " << which << " k=" << k << " w=" << w;
      }
      for (std::size_t e = 0; e < f.topo.num_edges(); ++e) {
        EXPECT_EQ(sparse.edge_available(k, e), dense.edge_available(k, e))
            << "zoo " << which << " k=" << k << " e=" << e;
      }
    }
  }
}

TEST(SparseFaultPlanTest, QueryOrderIndependent) {
  PopFixture f;
  fl::RunConfig cfg = f.cfg;
  cfg.total_iterations = 12;
  const sim::FaultConfig fc = zoo_config(5);
  const sim::FaultPlan dense(f.topo, cfg, fc);
  const sim::SparseFaultPlan sparse(f.topo.num_workers(), f.topo.num_edges(),
                                    fc);
  // Scrambled and backward queries must replay to the same answers.
  Rng order(9);
  for (int q = 0; q < 400; ++q) {
    const std::size_t k = 1 + order.uniform_index(dense.num_intervals());
    const std::size_t w = order.uniform_index(f.topo.num_workers());
    EXPECT_EQ(sparse.worker_available(k, w), dense.worker_available(k, w))
        << "k=" << k << " w=" << w;
  }
  for (int q = 0; q < 100; ++q) {
    const std::size_t k = 1 + order.uniform_index(dense.num_intervals());
    const std::size_t e = order.uniform_index(f.topo.num_edges());
    EXPECT_EQ(sparse.edge_available(k, e), dense.edge_available(k, e));
  }
}

TEST(SparseFaultPlanTest, ReportsAbsentPolicy) {
  sim::FaultConfig fc;
  fc.dropout.prob = 0.2;
  fc.absent_policy = fl::AbsentPolicy::kDecay;
  fc.absent_decay = 0.25;
  const sim::SparseFaultPlan sparse(4, 2, fc);
  EXPECT_EQ(sparse.absent_policy(), fl::AbsentPolicy::kDecay);
  EXPECT_EQ(sparse.absent_decay(), 0.25);
}

pop::CohortStore make_store(const PopFixture& f, std::size_t cohort,
                            bool with_replacement = false) {
  pop::VirtConfig vc;
  vc.cohort_size = cohort;
  vc.with_replacement = with_replacement;
  return pop::CohortStore(f.factory, f.dataset, f.partition, f.topo, f.cfg,
                          vc);
}

TEST(CohortStoreTest, CohortDrawsDeterministicPerRound) {
  PopFixture f;
  auto a = make_store(f, 3);
  auto b = make_store(f, 3);
  std::vector<fl::WorkerId> ids_a, ids_b;
  std::vector<Scalar> mult_a, mult_b;
  // Query rounds out of order on one store: draws depend on (seed, k) only.
  for (const std::size_t k : {3u, 1u, 2u}) {
    a.sample_cohort(k, ids_a, mult_a);
    const auto first = ids_a;
    b.sample_cohort(k, ids_b, mult_b);
    EXPECT_EQ(ids_a, ids_b) << "k=" << k;
    a.sample_cohort(k, ids_a, mult_a);
    EXPECT_EQ(ids_a, first) << "re-draw k=" << k;
    EXPECT_TRUE(std::is_sorted(ids_a.begin(), ids_a.end()));
    EXPECT_EQ(std::adjacent_find(ids_a.begin(), ids_a.end()), ids_a.end());
    EXPECT_EQ(ids_a.size(), 3u);  // WOR: exactly cohort_size distinct ids
    for (const Scalar m : mult_a) EXPECT_EQ(m, 1.0);
  }
}

TEST(CohortStoreTest, WithReplacementMultiplicitiesSumToCohortSize) {
  PopFixture f;
  auto store = make_store(f, 6, /*with_replacement=*/true);
  std::vector<fl::WorkerId> ids;
  std::vector<Scalar> mult;
  for (std::size_t k = 1; k <= 5; ++k) {
    store.sample_cohort(k, ids, mult);
    ASSERT_EQ(ids.size(), mult.size());
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    Scalar total = 0.0;
    for (const Scalar m : mult) {
      EXPECT_GE(m, 1.0);
      total += m;
    }
    EXPECT_EQ(total, 6.0);
  }
}

TEST(CohortStoreTest, SpillRestoreRoundTripsEveryMutableField) {
  PopFixture f;
  auto rotated = make_store(f, 2);
  auto pinned = make_store(f, 2);
  const Vec x0(8, 0.5);
  rotated.begin_run(x0);
  pinned.begin_run(x0);
  rotated.set_cohort({0, 2});
  pinned.set_cohort({0, 2});

  // Identical mutations on both stores' worker 0: momentum-ish vectors,
  // algorithm extras, and consumed batch draws.
  const auto mutate = [](fl::WorkerState& w) {
    const Tensor* bx = nullptr;
    const std::vector<std::size_t>* by = nullptr;
    for (int d = 0; d < 3; ++d) w.draw_batch(bx, by);
    for (std::size_t i = 0; i < w.x.size(); ++i) {
      w.x[i] += 0.25 * static_cast<Scalar>(i);
      w.v[i] = 1.0 / static_cast<Scalar>(i + 1);
      w.sum_grad[i] = -0.125 * static_cast<Scalar>(i);
    }
    w.last_loss = 0.625;
    w.extra["anchor"] = Vec{1.0, 2.0, 3.0};
    w.extra["momentum_aux"] = Vec(5, -0.5);
  };
  mutate(rotated.workers()[0]);
  mutate(pinned.workers()[0]);

  rotated.set_cohort({2});     // spill worker 0
  EXPECT_FALSE(rotated.workers().is_materialized(0));
  EXPECT_EQ(rotated.num_materialized(), 1u);
  rotated.set_cohort({0, 2});  // restore it
  ASSERT_TRUE(rotated.workers().is_materialized(0));

  fl::WorkerState& a = rotated.workers()[0];
  fl::WorkerState& b = pinned.workers()[0];
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.v, b.v);
  EXPECT_EQ(a.grad, b.grad);
  EXPECT_EQ(a.last_loss, b.last_loss);
  EXPECT_EQ(a.sum_grad, b.sum_grad);
  EXPECT_EQ(a.sum_y, b.sum_y);
  EXPECT_EQ(a.sum_v, b.sum_v);
  EXPECT_EQ(a.extra, b.extra);
  EXPECT_EQ(a.weight_in_edge, b.weight_in_edge);
  EXPECT_EQ(a.weight_global, b.weight_global);

  // Batch streams resume exactly where the spilled worker left off.
  const data::BatcherState sa = a.batcher->save_state();
  const data::BatcherState sb = b.batcher->save_state();
  EXPECT_EQ(sa.indices, sb.indices);
  EXPECT_EQ(sa.cursor, sb.cursor);
  EXPECT_TRUE(std::equal(std::begin(sa.rng.s), std::end(sa.rng.s),
                         std::begin(sb.rng.s)));
  EXPECT_EQ(sa.rng.fork_counter, sb.rng.fork_counter);
  const Tensor *ax = nullptr, *bx = nullptr;
  const std::vector<std::size_t>*ay = nullptr, *by = nullptr;
  for (int d = 0; d < 4; ++d) {
    a.draw_batch(ax, ay);
    b.draw_batch(bx, by);
    EXPECT_EQ(*ay, *by) << "post-restore draw " << d;
  }
}

TEST(CohortStoreTest, FreshMaterializationMatchesAcrossStores) {
  PopFixture f;
  auto a = make_store(f, 2);
  auto b = make_store(f, 2);
  const Vec x0(8, 0.125);
  a.begin_run(x0);
  b.begin_run(x0);
  a.set_cohort({1, 3});
  // Materialization order must not matter: store b meets worker 3 first.
  b.set_cohort({3});
  b.set_cohort({1, 3});
  for (const fl::WorkerId id : {1u, 3u}) {
    const data::BatcherState sa = a.workers()[id].batcher->save_state();
    const data::BatcherState sb = b.workers()[id].batcher->save_state();
    EXPECT_EQ(sa.indices, sb.indices) << "worker " << id;
    EXPECT_TRUE(std::equal(std::begin(sa.rng.s), std::end(sa.rng.s),
                           std::begin(sb.rng.s)))
        << "worker " << id;
  }
}

}  // namespace
}  // namespace hfl
