
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/tensor_test.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/tensor_test.dir/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hfl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/hfl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algs/CMakeFiles/hfl_algs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/hfl_theory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
