file(REMOVE_RECURSE
  "CMakeFiles/vec_ops_test.dir/vec_ops_test.cpp.o"
  "CMakeFiles/vec_ops_test.dir/vec_ops_test.cpp.o.d"
  "vec_ops_test"
  "vec_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
