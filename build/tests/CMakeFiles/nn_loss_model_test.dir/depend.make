# Empty dependencies file for nn_loss_model_test.
# This may be replaced when dependencies are built.
