file(REMOVE_RECURSE
  "CMakeFiles/hieradmo_test.dir/hieradmo_test.cpp.o"
  "CMakeFiles/hieradmo_test.dir/hieradmo_test.cpp.o.d"
  "hieradmo_test"
  "hieradmo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hieradmo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
