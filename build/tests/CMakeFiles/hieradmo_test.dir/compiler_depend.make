# Empty compiler generated dependencies file for hieradmo_test.
# This may be replaced when dependencies are built.
