# Empty dependencies file for algs_test.
# This may be replaced when dependencies are built.
