file(REMOVE_RECURSE
  "CMakeFiles/algs_test.dir/algs_test.cpp.o"
  "CMakeFiles/algs_test.dir/algs_test.cpp.o.d"
  "algs_test"
  "algs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
