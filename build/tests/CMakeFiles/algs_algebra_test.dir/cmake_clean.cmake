file(REMOVE_RECURSE
  "CMakeFiles/algs_algebra_test.dir/algs_algebra_test.cpp.o"
  "CMakeFiles/algs_algebra_test.dir/algs_algebra_test.cpp.o.d"
  "algs_algebra_test"
  "algs_algebra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algs_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
