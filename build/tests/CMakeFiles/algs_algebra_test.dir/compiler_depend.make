# Empty compiler generated dependencies file for algs_algebra_test.
# This may be replaced when dependencies are built.
