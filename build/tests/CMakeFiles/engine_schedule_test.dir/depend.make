# Empty dependencies file for engine_schedule_test.
# This may be replaced when dependencies are built.
