file(REMOVE_RECURSE
  "CMakeFiles/engine_schedule_test.dir/engine_schedule_test.cpp.o"
  "CMakeFiles/engine_schedule_test.dir/engine_schedule_test.cpp.o.d"
  "engine_schedule_test"
  "engine_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
