file(REMOVE_RECURSE
  "CMakeFiles/nag_test.dir/nag_test.cpp.o"
  "CMakeFiles/nag_test.dir/nag_test.cpp.o.d"
  "nag_test"
  "nag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
