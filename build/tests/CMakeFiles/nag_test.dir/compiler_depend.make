# Empty compiler generated dependencies file for nag_test.
# This may be replaced when dependencies are built.
