file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_largeN.dir/bench_fig2_largeN.cpp.o"
  "CMakeFiles/bench_fig2_largeN.dir/bench_fig2_largeN.cpp.o.d"
  "CMakeFiles/bench_fig2_largeN.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig2_largeN.dir/bench_util.cpp.o.d"
  "bench_fig2_largeN"
  "bench_fig2_largeN.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_largeN.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
