# Empty dependencies file for bench_fig2_largeN.
# This may be replaced when dependencies are built.
