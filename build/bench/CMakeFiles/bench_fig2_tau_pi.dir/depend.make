# Empty dependencies file for bench_fig2_tau_pi.
# This may be replaced when dependencies are built.
