file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_tau_pi.dir/bench_fig2_tau_pi.cpp.o"
  "CMakeFiles/bench_fig2_tau_pi.dir/bench_fig2_tau_pi.cpp.o.d"
  "CMakeFiles/bench_fig2_tau_pi.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig2_tau_pi.dir/bench_util.cpp.o.d"
  "bench_fig2_tau_pi"
  "bench_fig2_tau_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tau_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
