file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_adaptive.dir/bench_fig2_adaptive.cpp.o"
  "CMakeFiles/bench_fig2_adaptive.dir/bench_fig2_adaptive.cpp.o.d"
  "CMakeFiles/bench_fig2_adaptive.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig2_adaptive.dir/bench_util.cpp.o.d"
  "bench_fig2_adaptive"
  "bench_fig2_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
