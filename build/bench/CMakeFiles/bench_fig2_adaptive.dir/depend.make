# Empty dependencies file for bench_fig2_adaptive.
# This may be replaced when dependencies are built.
