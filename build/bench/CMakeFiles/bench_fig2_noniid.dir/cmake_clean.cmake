file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_noniid.dir/bench_fig2_noniid.cpp.o"
  "CMakeFiles/bench_fig2_noniid.dir/bench_fig2_noniid.cpp.o.d"
  "CMakeFiles/bench_fig2_noniid.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig2_noniid.dir/bench_util.cpp.o.d"
  "bench_fig2_noniid"
  "bench_fig2_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
