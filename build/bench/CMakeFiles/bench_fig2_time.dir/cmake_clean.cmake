file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_time.dir/bench_fig2_time.cpp.o"
  "CMakeFiles/bench_fig2_time.dir/bench_fig2_time.cpp.o.d"
  "CMakeFiles/bench_fig2_time.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig2_time.dir/bench_util.cpp.o.d"
  "bench_fig2_time"
  "bench_fig2_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
