file(REMOVE_RECURSE
  "CMakeFiles/trace_driven_time.dir/trace_driven_time.cpp.o"
  "CMakeFiles/trace_driven_time.dir/trace_driven_time.cpp.o.d"
  "trace_driven_time"
  "trace_driven_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_driven_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
