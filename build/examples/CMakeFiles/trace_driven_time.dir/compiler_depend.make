# Empty compiler generated dependencies file for trace_driven_time.
# This may be replaced when dependencies are built.
