file(REMOVE_RECURSE
  "libhfl_theory.a"
)
