# Empty compiler generated dependencies file for hfl_theory.
# This may be replaced when dependencies are built.
