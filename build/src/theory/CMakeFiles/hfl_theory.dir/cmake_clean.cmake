file(REMOVE_RECURSE
  "CMakeFiles/hfl_theory.dir/bounds.cpp.o"
  "CMakeFiles/hfl_theory.dir/bounds.cpp.o.d"
  "CMakeFiles/hfl_theory.dir/estimators.cpp.o"
  "CMakeFiles/hfl_theory.dir/estimators.cpp.o.d"
  "CMakeFiles/hfl_theory.dir/theorem5.cpp.o"
  "CMakeFiles/hfl_theory.dir/theorem5.cpp.o.d"
  "libhfl_theory.a"
  "libhfl_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
