file(REMOVE_RECURSE
  "libhfl_nn.a"
)
