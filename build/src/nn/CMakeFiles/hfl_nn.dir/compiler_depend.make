# Empty compiler generated dependencies file for hfl_nn.
# This may be replaced when dependencies are built.
