file(REMOVE_RECURSE
  "CMakeFiles/hfl_nn.dir/activations.cpp.o"
  "CMakeFiles/hfl_nn.dir/activations.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/conv2d.cpp.o"
  "CMakeFiles/hfl_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/dense.cpp.o"
  "CMakeFiles/hfl_nn.dir/dense.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/dropout.cpp.o"
  "CMakeFiles/hfl_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/flatten.cpp.o"
  "CMakeFiles/hfl_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/hfl_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/layer.cpp.o"
  "CMakeFiles/hfl_nn.dir/layer.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/loss.cpp.o"
  "CMakeFiles/hfl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/model.cpp.o"
  "CMakeFiles/hfl_nn.dir/model.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/models.cpp.o"
  "CMakeFiles/hfl_nn.dir/models.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/pool2d.cpp.o"
  "CMakeFiles/hfl_nn.dir/pool2d.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/residual.cpp.o"
  "CMakeFiles/hfl_nn.dir/residual.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/sequential.cpp.o"
  "CMakeFiles/hfl_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/hfl_nn.dir/serialize.cpp.o"
  "CMakeFiles/hfl_nn.dir/serialize.cpp.o.d"
  "libhfl_nn.a"
  "libhfl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
