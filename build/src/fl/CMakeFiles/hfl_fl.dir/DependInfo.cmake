
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/compression.cpp" "src/fl/CMakeFiles/hfl_fl.dir/compression.cpp.o" "gcc" "src/fl/CMakeFiles/hfl_fl.dir/compression.cpp.o.d"
  "/root/repo/src/fl/engine.cpp" "src/fl/CMakeFiles/hfl_fl.dir/engine.cpp.o" "gcc" "src/fl/CMakeFiles/hfl_fl.dir/engine.cpp.o.d"
  "/root/repo/src/fl/metrics.cpp" "src/fl/CMakeFiles/hfl_fl.dir/metrics.cpp.o" "gcc" "src/fl/CMakeFiles/hfl_fl.dir/metrics.cpp.o.d"
  "/root/repo/src/fl/state.cpp" "src/fl/CMakeFiles/hfl_fl.dir/state.cpp.o" "gcc" "src/fl/CMakeFiles/hfl_fl.dir/state.cpp.o.d"
  "/root/repo/src/fl/topology.cpp" "src/fl/CMakeFiles/hfl_fl.dir/topology.cpp.o" "gcc" "src/fl/CMakeFiles/hfl_fl.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hfl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
