file(REMOVE_RECURSE
  "CMakeFiles/hfl_fl.dir/compression.cpp.o"
  "CMakeFiles/hfl_fl.dir/compression.cpp.o.d"
  "CMakeFiles/hfl_fl.dir/engine.cpp.o"
  "CMakeFiles/hfl_fl.dir/engine.cpp.o.d"
  "CMakeFiles/hfl_fl.dir/metrics.cpp.o"
  "CMakeFiles/hfl_fl.dir/metrics.cpp.o.d"
  "CMakeFiles/hfl_fl.dir/state.cpp.o"
  "CMakeFiles/hfl_fl.dir/state.cpp.o.d"
  "CMakeFiles/hfl_fl.dir/topology.cpp.o"
  "CMakeFiles/hfl_fl.dir/topology.cpp.o.d"
  "libhfl_fl.a"
  "libhfl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
