file(REMOVE_RECURSE
  "libhfl_fl.a"
)
