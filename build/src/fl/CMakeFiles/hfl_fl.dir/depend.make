# Empty dependencies file for hfl_fl.
# This may be replaced when dependencies are built.
