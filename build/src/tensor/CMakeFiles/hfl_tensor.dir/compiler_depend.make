# Empty compiler generated dependencies file for hfl_tensor.
# This may be replaced when dependencies are built.
