file(REMOVE_RECURSE
  "libhfl_tensor.a"
)
