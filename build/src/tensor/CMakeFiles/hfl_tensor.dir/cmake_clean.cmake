file(REMOVE_RECURSE
  "CMakeFiles/hfl_tensor.dir/tensor.cpp.o"
  "CMakeFiles/hfl_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/hfl_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/hfl_tensor.dir/tensor_ops.cpp.o.d"
  "libhfl_tensor.a"
  "libhfl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
