# Empty dependencies file for hfl_common.
# This may be replaced when dependencies are built.
