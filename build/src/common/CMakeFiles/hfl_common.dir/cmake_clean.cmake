file(REMOVE_RECURSE
  "CMakeFiles/hfl_common.dir/csv.cpp.o"
  "CMakeFiles/hfl_common.dir/csv.cpp.o.d"
  "CMakeFiles/hfl_common.dir/errors.cpp.o"
  "CMakeFiles/hfl_common.dir/errors.cpp.o.d"
  "CMakeFiles/hfl_common.dir/logging.cpp.o"
  "CMakeFiles/hfl_common.dir/logging.cpp.o.d"
  "CMakeFiles/hfl_common.dir/rng.cpp.o"
  "CMakeFiles/hfl_common.dir/rng.cpp.o.d"
  "CMakeFiles/hfl_common.dir/thread_pool.cpp.o"
  "CMakeFiles/hfl_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/hfl_common.dir/vec_ops.cpp.o"
  "CMakeFiles/hfl_common.dir/vec_ops.cpp.o.d"
  "libhfl_common.a"
  "libhfl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
