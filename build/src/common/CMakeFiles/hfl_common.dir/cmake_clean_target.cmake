file(REMOVE_RECURSE
  "libhfl_common.a"
)
