# Empty compiler generated dependencies file for hfl_common.
# This may be replaced when dependencies are built.
