# Empty dependencies file for hfl_data.
# This may be replaced when dependencies are built.
