file(REMOVE_RECURSE
  "CMakeFiles/hfl_data.dir/batcher.cpp.o"
  "CMakeFiles/hfl_data.dir/batcher.cpp.o.d"
  "CMakeFiles/hfl_data.dir/dataset.cpp.o"
  "CMakeFiles/hfl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/hfl_data.dir/partitioner.cpp.o"
  "CMakeFiles/hfl_data.dir/partitioner.cpp.o.d"
  "CMakeFiles/hfl_data.dir/synthetic.cpp.o"
  "CMakeFiles/hfl_data.dir/synthetic.cpp.o.d"
  "libhfl_data.a"
  "libhfl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
