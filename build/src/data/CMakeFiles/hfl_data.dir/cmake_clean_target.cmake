file(REMOVE_RECURSE
  "libhfl_data.a"
)
