# Empty dependencies file for hfl_core.
# This may be replaced when dependencies are built.
