file(REMOVE_RECURSE
  "CMakeFiles/hfl_core.dir/hieradmo.cpp.o"
  "CMakeFiles/hfl_core.dir/hieradmo.cpp.o.d"
  "CMakeFiles/hfl_core.dir/nag.cpp.o"
  "CMakeFiles/hfl_core.dir/nag.cpp.o.d"
  "libhfl_core.a"
  "libhfl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
