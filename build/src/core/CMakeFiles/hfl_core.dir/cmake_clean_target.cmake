file(REMOVE_RECURSE
  "libhfl_core.a"
)
