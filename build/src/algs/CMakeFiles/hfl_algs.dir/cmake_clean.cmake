file(REMOVE_RECURSE
  "CMakeFiles/hfl_algs.dir/cfl.cpp.o"
  "CMakeFiles/hfl_algs.dir/cfl.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/fastslowmo.cpp.o"
  "CMakeFiles/hfl_algs.dir/fastslowmo.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/fedadc.cpp.o"
  "CMakeFiles/hfl_algs.dir/fedadc.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/fedavg.cpp.o"
  "CMakeFiles/hfl_algs.dir/fedavg.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/fedmom.cpp.o"
  "CMakeFiles/hfl_algs.dir/fedmom.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/fednag.cpp.o"
  "CMakeFiles/hfl_algs.dir/fednag.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/hierfavg.cpp.o"
  "CMakeFiles/hfl_algs.dir/hierfavg.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/mime.cpp.o"
  "CMakeFiles/hfl_algs.dir/mime.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/registry.cpp.o"
  "CMakeFiles/hfl_algs.dir/registry.cpp.o.d"
  "CMakeFiles/hfl_algs.dir/slowmo.cpp.o"
  "CMakeFiles/hfl_algs.dir/slowmo.cpp.o.d"
  "libhfl_algs.a"
  "libhfl_algs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_algs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
