# Empty dependencies file for hfl_algs.
# This may be replaced when dependencies are built.
