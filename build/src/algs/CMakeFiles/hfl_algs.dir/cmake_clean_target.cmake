file(REMOVE_RECURSE
  "libhfl_algs.a"
)
