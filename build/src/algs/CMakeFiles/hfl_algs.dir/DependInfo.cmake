
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algs/cfl.cpp" "src/algs/CMakeFiles/hfl_algs.dir/cfl.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/cfl.cpp.o.d"
  "/root/repo/src/algs/fastslowmo.cpp" "src/algs/CMakeFiles/hfl_algs.dir/fastslowmo.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/fastslowmo.cpp.o.d"
  "/root/repo/src/algs/fedadc.cpp" "src/algs/CMakeFiles/hfl_algs.dir/fedadc.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/fedadc.cpp.o.d"
  "/root/repo/src/algs/fedavg.cpp" "src/algs/CMakeFiles/hfl_algs.dir/fedavg.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/fedavg.cpp.o.d"
  "/root/repo/src/algs/fedmom.cpp" "src/algs/CMakeFiles/hfl_algs.dir/fedmom.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/fedmom.cpp.o.d"
  "/root/repo/src/algs/fednag.cpp" "src/algs/CMakeFiles/hfl_algs.dir/fednag.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/fednag.cpp.o.d"
  "/root/repo/src/algs/hierfavg.cpp" "src/algs/CMakeFiles/hfl_algs.dir/hierfavg.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/hierfavg.cpp.o.d"
  "/root/repo/src/algs/mime.cpp" "src/algs/CMakeFiles/hfl_algs.dir/mime.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/mime.cpp.o.d"
  "/root/repo/src/algs/registry.cpp" "src/algs/CMakeFiles/hfl_algs.dir/registry.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/registry.cpp.o.d"
  "/root/repo/src/algs/slowmo.cpp" "src/algs/CMakeFiles/hfl_algs.dir/slowmo.cpp.o" "gcc" "src/algs/CMakeFiles/hfl_algs.dir/slowmo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/hfl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hfl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
