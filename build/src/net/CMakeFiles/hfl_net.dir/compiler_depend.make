# Empty compiler generated dependencies file for hfl_net.
# This may be replaced when dependencies are built.
