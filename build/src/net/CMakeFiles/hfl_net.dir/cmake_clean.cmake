file(REMOVE_RECURSE
  "CMakeFiles/hfl_net.dir/profiles.cpp.o"
  "CMakeFiles/hfl_net.dir/profiles.cpp.o.d"
  "CMakeFiles/hfl_net.dir/time_simulator.cpp.o"
  "CMakeFiles/hfl_net.dir/time_simulator.cpp.o.d"
  "libhfl_net.a"
  "libhfl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
