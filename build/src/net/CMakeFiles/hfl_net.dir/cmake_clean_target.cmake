file(REMOVE_RECURSE
  "libhfl_net.a"
)
