// Example: execution policies of the event-driven engine (DESIGN.md §12).
//
// Runs HierAdMo on one straggler-heavy workload under all three execution
// policies — the paper's synchronous barrier, deadline-based semi-async
// admission, and fully asynchronous aggregation with bounded staleness —
// and writes `async_comparison.csv` with one row per recorded curve point:
//
//   policy, iteration, sim_time_s, test_accuracy, test_loss
//
// plus a `summary` section (one row per policy) with the simulated run time,
// the staleness profile of the updates the aggregators admitted, and the
// modeled communication time hidden behind computation (overlap_s — the
// event-driven policies upload while the next interval already computes).
// Plotting accuracy against sim_time_s shows the trade the policies make:
// the barrier wastes modeled time waiting for stragglers, the asynchronous
// policies trade a little accuracy-per-update (stale updates are
// down-weighted by staleness_decay^tau) for a faster clock.
#include <cstdio>
#include <memory>
#include <string>

#include "src/algs/registry.h"
#include "src/common/csv.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/evt/async_engine.h"
#include "src/nn/models.h"
#include "src/sim/fault_plan.h"

int main() {
  using namespace hfl;

  Rng rng(21);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(3, 4);
  const data::Partition partition =
      data::partition_by_class(dataset.train, topo.num_workers(), 5, rng);
  const nn::ModelFactory factory = nn::logistic_regression({1, 28, 28}, 10);

  fl::RunConfig cfg;
  cfg.total_iterations = 80;
  cfg.tau = 2;
  cfg.pi = 2;
  cfg.eta = 0.01;
  cfg.gamma = 0.5;
  cfg.gamma_edge = 0.5;
  cfg.batch_size = 16;
  cfg.eval_max_samples = 300;
  cfg.seed = 9;
  cfg.batched = false;  // the event-driven policies reject the batched path

  // Half the fleet ~4× slow: the regime where barriers hurt.
  sim::FaultConfig fc;
  fc.seed = 11;
  fc.straggler.fraction = 0.5;
  fc.straggler.slowdown = 4.0;
  fc.straggler.jitter = 0.3;
  const sim::FaultPlan plan(topo, cfg, fc);

  const net::TimeSimConfig sim = net::make_time_sim_config(
      "HierAdMo", /*three_tier=*/true, factory()->num_params(),
      topo.num_workers());

  struct PolicySpec {
    const char* label;
    fl::ExecPolicy policy;
    Scalar deadline_s;
  };
  const PolicySpec policies[3] = {
      {"sync", fl::ExecPolicy::kSync, 0.0},
      {"semi_async", fl::ExecPolicy::kSemiAsync, 0.5},
      {"async", fl::ExecPolicy::kAsync, 0.0},
  };

  CsvWriter csv("async_comparison.csv");
  csv.write_header({"section", "policy", "iteration", "sim_time_s",
                    "test_accuracy", "test_loss", "admitted", "stale",
                    "dropped", "mean_staleness", "max_staleness",
                    "overlap_s"});

  std::printf("%-12s%-12s%-12s%-10s%-10s%-10s%-14s%-10s\n", "policy",
              "sim-time", "final-acc", "admitted", "stale", "dropped",
              "mean-staleness", "overlap-s");
  for (const PolicySpec& spec : policies) {
    fl::RunConfig pcfg = cfg;
    pcfg.policy = spec.policy;
    pcfg.semi_async_deadline_s = spec.deadline_s;
    evt::AsyncEngine engine(factory, dataset, partition, topo, pcfg, sim);
    auto alg = algs::make_algorithm("HierAdMo");
    const fl::RunResult r = engine.run(*alg, &plan);

    for (const fl::MetricPoint& p : r.curve) {
      csv.write_row({"curve", spec.label, std::to_string(p.iteration),
                     CsvWriter::format_scalar(p.sim_time),
                     CsvWriter::format_scalar(p.test_accuracy),
                     CsvWriter::format_scalar(p.test_loss), "", "", "", "",
                     "", ""});
    }
    csv.write_row({"summary", spec.label, "",
                   CsvWriter::format_scalar(r.sim_seconds),
                   CsvWriter::format_scalar(r.final_accuracy),
                   CsvWriter::format_scalar(r.final_loss),
                   std::to_string(r.admitted_updates),
                   std::to_string(r.stale_updates),
                   std::to_string(r.dropped_updates),
                   CsvWriter::format_scalar(r.mean_staleness),
                   std::to_string(r.max_staleness_seen),
                   CsvWriter::format_scalar(r.overlap_seconds)});
    std::printf("%-12s%-12.1f%-12.3f%-10zu%-10zu%-10zu%-14.2f%-10.1f\n",
                spec.label, r.sim_seconds, r.final_accuracy,
                r.admitted_updates, r.stale_updates, r.dropped_updates,
                r.mean_staleness, r.overlap_seconds);
  }
  std::printf("\nwrote async_comparison.csv (plot accuracy vs sim_time_s "
              "per policy)\n");
  return 0;
}
