// Example: trace-driven wall-clock simulation (the Fig. 2(h)/(l)
// methodology).
//
// Trains HierAdMo (three-tier) and FedNAG (two-tier, matched period) on the
// same workload, then replays both accuracy traces against the paper's
// device/link roster (laptop + three phones behind 5 GHz WiFi; edge MacBook;
// cloud GPU server across the public Internet) to compare time-to-accuracy.
// The three-tier run pays the WAN cost only once per π edge rounds — that is
// the whole architectural argument of Fig. 1.
#include <cstdio>

#include "src/algs/registry.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/net/time_simulator.h"
#include "src/nn/models.h"

int main() {
  using namespace hfl;

  Rng rng(21);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);
  const nn::ModelFactory factory = nn::cnn({1, 28, 28}, 10);
  const std::size_t model_params = factory()->num_params();

  fl::RunConfig cfg3;
  cfg3.total_iterations = 240;
  cfg3.tau = 10;
  cfg3.pi = 2;
  cfg3.eta = 0.01;
  cfg3.gamma = 0.5;
  cfg3.gamma_edge = 0.5;
  cfg3.batch_size = 8;
  cfg3.eval_every = 20;
  cfg3.eval_max_samples = 300;
  cfg3.seed = 9;
  fl::RunConfig cfg2 = cfg3;
  cfg2.tau = 20;
  cfg2.pi = 1;

  fl::Engine engine3(factory, dataset, partition, topo, cfg3);
  fl::Engine engine2(factory, dataset, partition, topo, cfg2);

  struct Run {
    const char* name;
    bool three_tier;
    fl::RunResult result;
    const fl::RunConfig* cfg;
  };
  Run runs[2] = {{"HierAdMo", true, {}, &cfg3}, {"FedNAG", false, {}, &cfg2}};
  runs[0].result = engine3.run(*algs::make_algorithm("HierAdMo"));
  runs[1].result = engine2.run(*algs::make_algorithm("FedNAG"));

  std::printf("%-10s%-12s%-14s%-16s%-16s\n", "algo", "final-acc",
              "total-time", "iters-to-80%", "time-to-80%");
  for (const Run& run : runs) {
    net::TimeSimConfig sim = net::make_time_sim_config(
        run.name, run.three_tier, model_params, topo.num_workers());
    net::TimeSimulator timer(topo, *run.cfg, sim);
    const std::size_t iters = run.result.iterations_to_accuracy(0.8);
    const bool reached = iters != hfl::kNeverIndex;
    std::printf("%-10s%-12.3f%-14.1f%-16s%-16.1f\n", run.name,
                run.result.final_accuracy, timer.total_time(),
                reached ? std::to_string(iters).c_str() : "never",
                reached ? timer.time_to_accuracy(run.result, 0.8) : 0.0);
  }
  std::printf("\n(model: %zu parameters; delays: see src/net/profiles.h)\n",
              model_params);
  return 0;
}
