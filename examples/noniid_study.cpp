// Example: how data heterogeneity drives the value of hierarchy + momentum.
//
// Sweeps the x-class non-i.i.d. level (Fig. 2(e)–(g) methodology) on an MLP
// and reports, per level:
//   * the estimated gradient-diversity constants δℓ, δ of Assumption 3
//     (via theory::estimate_assumptions), and
//   * final accuracy of HierAdMo vs HierFAVG vs FedAvg.
// Expected: smaller x → larger δ → larger accuracy spread in HierAdMo's
// favour.
#include <cstdio>

#include "src/algs/registry.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"
#include "src/theory/estimators.h"

int main() {
  using namespace hfl;

  Rng data_rng(11);
  const data::TrainTest dataset = data::make_synthetic_mnist(data_rng);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const nn::ModelFactory factory = nn::mlp({1, 28, 28}, 32, 10);

  std::printf("%-8s%-12s%-12s%-12s%-12s%-12s\n", "x", "delta", "HierAdMo",
              "HierFAVG", "FedAvg", "spread");
  for (const std::size_t x : {2, 4, 6, 8, 10}) {
    Rng rng(50 + x);
    const data::Partition partition = data::partition_by_class(
        dataset.train, topo.num_workers(), x, rng);

    theory::EstimatorOptions opts;
    opts.probe_points = 3;
    const theory::AssumptionEstimates est = theory::estimate_assumptions(
        factory, dataset.train, partition, topo, opts);

    fl::RunConfig cfg3;
    cfg3.total_iterations = 200;
    cfg3.tau = 10;
    cfg3.pi = 2;
    cfg3.eta = 0.01;
    cfg3.gamma = 0.5;
    cfg3.gamma_edge = 0.5;
    cfg3.batch_size = 16;
    cfg3.eval_max_samples = 300;
    cfg3.seed = 5;
    fl::RunConfig cfg2 = cfg3;
    cfg2.tau = 20;
    cfg2.pi = 1;

    fl::Engine engine3(factory, dataset, partition, topo, cfg3);
    fl::Engine engine2(factory, dataset, partition, topo, cfg2);

    Scalar acc[3] = {0, 0, 0};
    const char* names[3] = {"HierAdMo", "HierFAVG", "FedAvg"};
    for (int i = 0; i < 3; ++i) {
      auto alg = algs::make_algorithm(names[i]);
      fl::Engine& engine = alg->three_tier() ? engine3 : engine2;
      acc[i] = engine.run(*alg).final_accuracy;
    }
    std::printf("%-8zu%-12.3f%-12.3f%-12.3f%-12.3f%-12.3f\n", x,
                est.delta_global, acc[0], acc[1], acc[2], acc[0] - acc[2]);
  }
  return 0;
}
