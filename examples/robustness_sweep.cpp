// Robustness sweep: how do the paper's algorithms degrade when workers drop
// out?
//
// The paper's experiments assume full participation. This sweep replays the
// same seeded dropout trace (sim::FaultPlan) for every algorithm at each
// dropout level 0–40%, so differences in the resulting accuracy are due to
// the algorithms, not to luck in who dropped. Three-tier algorithms
// (HierAdMo, HierFAVG) and two-tier ones (FedNAG, SlowMo) run with matched
// aggregation periods (τ2 = τ·π), the paper's fairness convention.
//
// All 20 (algorithm × dropout) runs are independent, so they dispatch
// concurrently through fl::run_sweep; results come back in job order and are
// bit-identical to the serial loop this example used to be.
//
// Emits results/fig_robustness_results.csv (one row per algorithm × dropout
// level) and results/fig_robustness_participation.csv (per-interval
// participation traces at the harshest level).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/common/csv.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/sweep.h"
#include "src/nn/models.h"
#include "src/sim/fault_plan.h"

int main() {
  using namespace hfl;

  Rng rng(7);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);

  fl::RunConfig cfg3;
  cfg3.total_iterations = 400;
  cfg3.tau = 10;
  cfg3.pi = 2;
  cfg3.eta = 0.01;
  cfg3.gamma = 0.5;
  cfg3.gamma_edge = 0.5;
  cfg3.batch_size = 16;
  cfg3.eval_max_samples = 300;
  cfg3.seed = 3;

  fl::RunConfig cfg2 = cfg3;
  cfg2.tau = 20;  // matched to τ·π
  cfg2.pi = 1;

  const std::vector<std::string> algorithms = {"HierAdMo", "HierFAVG",
                                               "FedNAG", "SlowMo"};
  const std::vector<Scalar> dropout_levels = {0.0, 0.1, 0.2, 0.3, 0.4};
  const Scalar target_accuracy = 0.6;

  // One fault trace per dropout level, shared by every algorithm. Interval
  // counts differ per tier (τ vs τ·π), so each tier gets its own
  // materialization of the same fault models. The plans must outlive the
  // sweep, hence the owning vector.
  struct JobMeta {
    std::string name;
    bool three_tier;
    Scalar dropout;
    const sim::FaultPlan* plan;
  };
  std::vector<std::unique_ptr<sim::FaultPlan>> plans;
  std::vector<JobMeta> meta;
  std::vector<fl::SweepJob> jobs;
  for (const Scalar dropout : dropout_levels) {
    sim::FaultConfig fc;
    fc.seed = 42;
    fc.dropout.prob = dropout;
    plans.push_back(std::make_unique<sim::FaultPlan>(topo, cfg3, fc));
    const sim::FaultPlan* plan3 = plans.back().get();
    plans.push_back(std::make_unique<sim::FaultPlan>(topo, cfg2, fc));
    const sim::FaultPlan* plan2 = plans.back().get();

    for (const std::string& name : algorithms) {
      const bool three = algs::make_algorithm(name)->three_tier();
      fl::SweepJob job;
      job.make_algorithm = [name] { return algs::make_algorithm(name); };
      job.cfg = three ? cfg3 : cfg2;
      job.schedule = &(three ? plan3 : plan2)->schedule();
      job.label = name;
      jobs.push_back(std::move(job));
      meta.push_back({name, three, dropout, three ? plan3 : plan2});
    }
  }

  const nn::ModelFactory factory = nn::logistic_regression({1, 28, 28}, 10);
  std::vector<fl::SweepResult> results =
      fl::run_sweep(factory, dataset, partition, topo, jobs);

  std::filesystem::create_directories("results");
  CsvWriter out("results/fig_robustness_results.csv");
  out.write_header({"algorithm", "three_tier", "dropout",
                    "planned_participation", "mean_participation_rate",
                    "final_accuracy", "best_accuracy", "iters_to_60"});

  std::vector<fl::RunResult> harshest;  // participation traces at 40%
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobMeta& m = meta[i];
    fl::RunResult& r = results[i].result;
    const std::size_t iters = r.iterations_to_accuracy(target_accuracy);
    out.write_row(
        {m.name, m.three_tier ? "1" : "0", CsvWriter::format_scalar(m.dropout),
         CsvWriter::format_scalar(m.plan->planned_participation()),
         CsvWriter::format_scalar(r.mean_participation_rate),
         CsvWriter::format_scalar(r.final_accuracy),
         CsvWriter::format_scalar(r.best_accuracy()),
         iters == hfl::kNeverIndex ? "never" : std::to_string(iters)});
    std::printf("dropout %.0f%%  %-10s -> %.2f%% (participation %.2f)\n",
                100 * m.dropout, m.name.c_str(), 100 * r.final_accuracy,
                r.mean_participation_rate);
    if (m.dropout == dropout_levels.back()) {
      r.algorithm = m.name;
      harshest.push_back(std::move(r));
    }
  }

  fl::write_participation_csv(harshest,
                              "results/fig_robustness_participation.csv");
  std::printf(
      "\nwrote results/fig_robustness_results.csv and "
      "results/fig_robustness_participation.csv\n");
  return 0;
}
