// Example: extending the framework with a custom algorithm.
//
// Implements "HierNAG" — hierarchical FedNAG: worker-level NAG with plain
// weighted averaging of both model and momentum at the edge and cloud tiers
// (i.e. HierAdMo without the edge momentum term). This is the natural
// ablation between HierFAVG (no momentum anywhere) and HierAdMo (momentum on
// both tiers), and a ~60-line demonstration of the fl::Algorithm interface.
#include <cstdio>

#include "src/algs/registry.h"
#include "src/core/nag.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

namespace {

using namespace hfl;

class HierNag final : public fl::Algorithm {
 public:
  std::string name() const override { return "HierNAG"; }
  bool three_tier() const override { return true; }

  void local_step(fl::Context& ctx, fl::WorkerState& w) override {
    core::nag_local_step(w, ctx.cfg->eta, ctx.cfg->gamma,
                         /*accumulate=*/false);
  }

  void edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t) override {
    fl::aggregate_edge(*ctx.topo, e.id, *ctx.workers, fl::worker_x, x_avg_);
    fl::aggregate_edge(*ctx.topo, e.id, *ctx.workers, fl::worker_y, y_avg_);
    e.x_plus = x_avg_;
    e.y_minus = y_avg_;
    for (const std::size_t id : ctx.topo->workers_of_edge(e.id)) {
      (*ctx.workers)[id].x = e.x_plus;
      (*ctx.workers)[id].y = e.y_minus;
    }
  }

  void cloud_sync(fl::Context& ctx, std::size_t) override {
    fl::CloudState& cloud = *ctx.cloud;
    cloud.x.assign(cloud.x.size(), 0.0);
    cloud.y.assign(cloud.y.size(), 0.0);
    for (const fl::EdgeState& e : *ctx.edges) {
      vec::axpy(e.weight_global, e.x_plus, cloud.x);
      vec::axpy(e.weight_global, e.y_minus, cloud.y);
    }
    for (fl::EdgeState& e : *ctx.edges) {
      e.x_plus = cloud.x;
      e.y_minus = cloud.y;
    }
    for (fl::WorkerState& w : *ctx.workers) {
      w.x = cloud.x;
      w.y = cloud.y;
    }
  }

 private:
  Vec x_avg_, y_avg_;
};

}  // namespace

int main() {
  Rng rng(17);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);

  fl::RunConfig cfg;
  cfg.total_iterations = 240;
  cfg.tau = 20;
  cfg.pi = 2;
  cfg.eta = 0.01;
  cfg.gamma = 0.5;
  cfg.gamma_edge = 0.5;
  cfg.batch_size = 8;
  cfg.eval_max_samples = 300;
  cfg.seed = 4;

  fl::Engine engine(nn::cnn({1, 28, 28}, 10), dataset, partition, topo, cfg);

  HierNag custom;
  const fl::RunResult r_custom = engine.run(custom);
  const fl::RunResult r_favg =
      engine.run(*algs::make_algorithm("HierFAVG"));
  const fl::RunResult r_admo =
      engine.run(*algs::make_algorithm("HierAdMo"));

  std::printf("CNN on synthetic MNIST, T=%zu, tau=%zu, pi=%zu\n",
              cfg.total_iterations, cfg.tau, cfg.pi);
  std::printf("  HierFAVG (no momentum)        : %.2f%%\n",
              100 * r_favg.final_accuracy);
  std::printf("  HierNAG  (worker momentum)    : %.2f%%\n",
              100 * r_custom.final_accuracy);
  std::printf("  HierAdMo (worker+edge, adapt.): %.2f%%\n",
              100 * r_admo.final_accuracy);
  return 0;
}
