// Example: compare all eleven FL algorithms on one workload.
//
// A compact version of the Table II experiment (bench/bench_table2 runs the
// full seven-column version): logistic regression on synthetic MNIST, 4
// workers / 2 edges, 5-class non-i.i.d. data. Two-tier algorithms run with a
// matched aggregation period (τ2 = τ·π) for fairness, exactly as the paper
// prescribes.
//
// The eleven runs are independent, so they dispatch concurrently through
// fl::run_sweep — one engine per job, results bit-identical to running the
// same loop serially (each engine rebuilds from the seed and its sync tier
// is deterministic for any thread count).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/sweep.h"
#include "src/nn/models.h"

int main() {
  using namespace hfl;

  Rng rng(7);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);

  fl::RunConfig cfg3;
  cfg3.total_iterations = 400;
  cfg3.tau = 10;
  cfg3.pi = 2;
  cfg3.eta = 0.01;
  cfg3.gamma = 0.5;
  cfg3.gamma_edge = 0.5;
  cfg3.batch_size = 16;
  cfg3.eval_max_samples = 300;
  cfg3.seed = 3;

  fl::RunConfig cfg2 = cfg3;
  cfg2.tau = 20;  // matched to τ·π
  cfg2.pi = 1;

  std::vector<fl::SweepJob> jobs;
  for (const std::string& name : algs::table2_algorithms()) {
    fl::SweepJob job;
    job.make_algorithm = [name] { return algs::make_algorithm(name); };
    job.cfg = algs::make_algorithm(name)->three_tier() ? cfg3 : cfg2;
    job.label = name;
    jobs.push_back(std::move(job));
  }

  const nn::ModelFactory factory = nn::logistic_regression({1, 28, 28}, 10);
  const std::vector<fl::SweepResult> results =
      fl::run_sweep(factory, dataset, partition, topo, jobs);

  struct Row {
    std::string name;
    Scalar accuracy;
  };
  std::vector<Row> rows;
  for (const fl::SweepResult& sr : results) {
    rows.push_back({sr.label, sr.result.final_accuracy});
    std::printf("ran %-12s -> %.2f%%\n", sr.label.c_str(),
                100 * sr.result.final_accuracy);
  }

  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) {
                     return a.accuracy > b.accuracy;
                   });
  std::printf("\nLogistic regression on synthetic MNIST, T=%zu — ranking:\n",
              cfg3.total_iterations);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%2zu. %-12s %.2f%%\n", i + 1, rows[i].name.c_str(),
                100 * rows[i].accuracy);
  }
  return 0;
}
