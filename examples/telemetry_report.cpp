// Telemetry report: what does one federated run actually cost?
//
// Runs two algorithms (three-tier HierAdMo and two-tier FedNAG with matched
// aggregation period) with the observability subsystem enabled, then a third
// HierAdMo run with Top-25% upload compression, and reports for each:
//   * the communication volume table — logical and wire bytes per tier link
//     (worker↔edge, edge↔cloud, worker↔cloud), showing both the algorithms'
//     different payload multiplicities and the compressed uplink's savings,
//   * where host wall-time went (flame-style span summary).
//
// Artifacts written (under results/, which is gitignored):
//   telemetry_comm_<run>.csv     per-link byte accounting per run
//   telemetry_metrics.csv/.jsonl final registry contents (counters, gauges,
//                                histograms: pool queue depth, busy time,
//                                GEMM op counts, engine sync counters)
//   telemetry_trace.json         chrome://tracing / Perfetto timeline of the
//                                last run
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/core/hieradmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

int main() {
  using namespace hfl;

  obs::set_enabled(true);

  Rng rng(7);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition =
      data::partition_by_class(dataset.train, topo.num_workers(), 5, rng);

  fl::RunConfig cfg3;
  cfg3.total_iterations = 200;
  cfg3.tau = 10;
  cfg3.pi = 2;
  cfg3.eta = 0.01;
  cfg3.gamma = 0.5;
  cfg3.gamma_edge = 0.5;
  cfg3.batch_size = 16;
  cfg3.eval_max_samples = 300;
  cfg3.seed = 3;

  fl::RunConfig cfg2 = cfg3;
  cfg2.tau = 20;  // matched to τ·π, the paper's fairness convention
  cfg2.pi = 1;

  const nn::ModelFactory factory = nn::logistic_regression({1, 28, 28}, 10);
  fl::Engine engine3(factory, dataset, partition, topo, cfg3);
  fl::Engine engine2(factory, dataset, partition, topo, cfg2);

  struct Run {
    std::string label;
    std::unique_ptr<fl::Algorithm> alg;
    fl::Engine* engine;
  };
  core::HierAdMoOptions compressed;
  compressed.upload_compressor = std::make_shared<fl::TopKCompressor>(0.25);

  std::vector<Run> runs;
  runs.push_back({"HierAdMo", algs::make_algorithm("HierAdMo"), &engine3});
  runs.push_back({"FedNAG", algs::make_algorithm("FedNAG"), &engine2});
  runs.push_back({"HierAdMo_topk25",
                  std::make_unique<core::HierAdMo>(compressed), &engine3});

  std::filesystem::create_directories("results");
  for (const Run& run : runs) {
    // Fresh accounting per run so each table covers exactly one run; the
    // trace accumulates across runs and is exported once at the end.
    obs::CommAccountant::global().reset();
    const fl::RunResult r = run.engine->run(*run.alg);
    std::printf("== %s: final accuracy %.2f%%, %.2fs host\n\n",
                run.label.c_str(), 100 * r.final_accuracy, r.wall_seconds);
    std::printf("%s\n", obs::CommAccountant::global().table().c_str());
    const std::string comm_csv =
        "results/telemetry_comm_" + run.label + ".csv";
    obs::CommAccountant::global().write_csv(comm_csv);
  }

  std::printf("== host time by span\n\n%s\n",
              obs::Tracer::global().flame_summary().c_str());

  obs::Tracer::global().write_chrome_json("results/telemetry_trace.json");
  obs::Registry::global().write_csv("results/telemetry_metrics.csv");
  obs::Registry::global().write_jsonl("results/telemetry_metrics.jsonl");
  std::printf(
      "wrote results/telemetry_comm_<run>.csv, "
      "results/telemetry_metrics.csv/.jsonl and results/telemetry_trace.json\n");
  return 0;
}
