// Quickstart: train HierAdMo on a synthetic MNIST-like task.
//
// Demonstrates the whole public API in ~60 lines:
//   1. synthesize a dataset,
//   2. partition it non-i.i.d. across workers,
//   3. define the client-edge-cloud topology,
//   4. run HierAdMo and print the accuracy curve.
#include <cstdio>

#include "src/core/hieradmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

int main() {
  using namespace hfl;

  // 1. Data: a 10-class MNIST-like task (28×28 grayscale).
  Rng rng(123);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);

  // 2. Topology: 2 edge nodes, each serving 2 workers (the paper's Table II
  //    setup), with 4-class non-i.i.d. local data.
  const fl::Topology topo = fl::Topology::uniform(/*num_edges=*/2,
                                                  /*workers_per_edge=*/2);
  data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), /*classes_per_worker=*/4, rng);

  // 3. Hyper-parameters (Table I): τ local iterations per edge aggregation,
  //    π edge aggregations per cloud aggregation.
  fl::RunConfig cfg;
  cfg.total_iterations = 200;
  cfg.tau = 10;
  cfg.pi = 2;
  cfg.eta = 0.01;
  cfg.gamma = 0.5;        // worker momentum factor
  cfg.gamma_edge = 0.5;   // edge momentum fallback (HierAdMo adapts it)
  cfg.batch_size = 16;
  cfg.seed = 42;

  // 4. Run HierAdMo.
  fl::Engine engine(nn::cnn({1, 28, 28}, 10), dataset, std::move(partition),
                    topo, cfg);
  auto alg = core::make_hieradmo();
  const fl::RunResult result = engine.run(*alg);

  std::printf("HierAdMo on synthetic MNIST (CNN, %zu workers, tau=%zu, "
              "pi=%zu)\n",
              topo.num_workers(), cfg.tau, cfg.pi);
  std::printf("%-12s%-12s%-12s\n", "iteration", "test-acc", "test-loss");
  for (const auto& p : result.curve) {
    std::printf("%-12zu%-12.4f%-12.4f\n", p.iteration, p.test_accuracy,
                p.test_loss);
  }
  std::printf("final accuracy: %.2f%% (simulated in %.1fs)\n",
              100.0 * result.final_accuracy, result.wall_seconds);
  return 0;
}
